"""Node feature assembly.

The paper's input encoding (section VI, Eq. 13):

* the binary ground-truth/query identifier ``I_l(v)`` (added per query by
  the models, not here);
* the one-hot attribute vector ``A(v)`` when the dataset has attributes
  (Cora, Citeseer, Facebook);
* auxiliary structural features — the core number and the local clustering
  coefficient — always appended; they are the *only* features for the
  attribute-free datasets (Arxiv, DBLP, Reddit).

Feature matrices are computed once per task graph and cached on the task.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .algorithms import core_numbers, local_clustering_coefficients
from .graph import Graph

__all__ = ["structural_features", "node_feature_matrix", "feature_dimension"]


def structural_features(graph: Graph, normalize: bool = True) -> np.ndarray:
    """``(n, 2)`` matrix of [core number, local clustering coefficient].

    Core numbers are scaled to [0, 1] by the graph's maximum so that feature
    magnitudes are comparable across task graphs of different densities.
    Features adopt the graph's own element dtype (the precision policy it
    was materialised under), not the ambient policy at call time, so a
    task's feature precision is a stable property of the task.
    """
    dtype = graph.adjacency.dtype
    cores = core_numbers(graph).astype(dtype)
    if normalize and cores.max(initial=0.0) > 0:
        cores = cores / cores.max()
    clustering = local_clustering_coefficients(graph).astype(dtype, copy=False)
    return np.stack([cores, clustering], axis=1)


def node_feature_matrix(graph: Graph, use_attributes: bool = True,
                        use_structural: bool = True) -> np.ndarray:
    """Assemble the per-node input features ``A(v) ‖ [core#, lcc]``.

    Parameters
    ----------
    graph:
        The task graph.
    use_attributes:
        Include the dataset attribute matrix when present.
    use_structural:
        Include core number and local clustering coefficient channels.
    """
    blocks = []
    if use_attributes and graph.attributes is not None:
        blocks.append(graph.attributes)
    if use_structural:
        blocks.append(structural_features(graph))
    if not blocks:
        # Degenerate configuration: fall back to a constant channel so the
        # GNN still has an input signal beyond the query indicator.
        blocks.append(np.ones((graph.num_nodes, 1), dtype=graph.adjacency.dtype))
    return np.concatenate(blocks, axis=1)


def feature_dimension(graph: Graph, use_attributes: bool = True,
                      use_structural: bool = True) -> int:
    """Dimensionality :func:`node_feature_matrix` will produce for ``graph``."""
    dim = 0
    if use_attributes and graph.attributes is not None:
        dim += graph.attributes.shape[1]
    if use_structural:
        dim += 2
    return dim if dim > 0 else 1
