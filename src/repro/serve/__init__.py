"""``repro.serve`` — the async serving gateway above the engine facade.

The layer that turns :class:`~repro.api.engine.CommunitySearchEngine`
(a session facade answering pre-made batches) into something that
behaves like a production service under concurrent single-query
traffic.  Pure stdlib ``asyncio`` — no new dependencies.

* :mod:`~repro.serve.gateway` — :class:`ServeGateway`: bounded-queue
  admission, tick-based cross-caller micro-batching, per-request
  futures; answers are bitwise-identical to direct engine calls;
* :mod:`~repro.serve.queue` — the bounded FIFO with reject-on-full
  (:class:`QueueFull`) or awaitable-slot backpressure;
* :mod:`~repro.serve.batcher` — per-task-session grouping and the
  single coalesced decoder pass per group;
* :mod:`~repro.serve.stats` — :class:`ServeStats` (extends
  ``EngineStats`` with latency/queue/batch-size histograms) and its
  Prometheus text exposition (:meth:`ServeStats.metrics_text`);
* :mod:`~repro.serve.loadgen` — the open-loop synthetic load generator
  driving ``repro loadgen`` and ``benchmarks/bench_serve_gateway.py``.
"""

from .batcher import MicroBatcher, TickResult
from .gateway import GatewayClosed, GatewayConfig, ServeGateway
from .loadgen import (LoadResult, open_loop_arrivals, request_nodes,
                      run_baseline, run_gateway)
from .queue import QueueFull, RequestQueue, ServeRequest
from .stats import (BATCH_SIZE_BUCKETS, LATENCY_BUCKETS, Histogram,
                    ServeStats, batch_size_histogram, latency_histogram)

__all__ = [
    "ServeGateway",
    "GatewayConfig",
    "GatewayClosed",
    "MicroBatcher",
    "TickResult",
    "RequestQueue",
    "ServeRequest",
    "QueueFull",
    "ServeStats",
    "Histogram",
    "latency_histogram",
    "batch_size_histogram",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "LoadResult",
    "open_loop_arrivals",
    "request_nodes",
    "run_baseline",
    "run_gateway",
]
