"""``repro.baselines`` — the learned baselines of the paper's comparison,
plus the unified method interface and the CGNP wrapper."""

from .aqd_gnn import AQDGNN, AQDGNNConfig, AQDGNNModel
from .base import CommunitySearchMethod, QueryPrediction, threshold_prediction
from .cgnp_method import CGNPMethod, make_cgnp_variant
from .feat_trans import FeatTransConfig, FeatureTransfer
from .gpn import GPN, GPNConfig
from .ics_gnn import ICSGNN, ICSGNNConfig, grow_community_by_scores
from .maml import MAML, MAMLConfig
from .reptile import Reptile, ReptileConfig
from .supervised import SupervisedConfig, SupervisedGNN

__all__ = [
    "CommunitySearchMethod",
    "QueryPrediction",
    "threshold_prediction",
    "CGNPMethod",
    "make_cgnp_variant",
    "SupervisedGNN",
    "SupervisedConfig",
    "FeatureTransfer",
    "FeatTransConfig",
    "MAML",
    "MAMLConfig",
    "Reptile",
    "ReptileConfig",
    "GPN",
    "GPNConfig",
    "ICSGNN",
    "ICSGNNConfig",
    "grow_community_by_scores",
    "AQDGNN",
    "AQDGNNConfig",
    "AQDGNNModel",
]
