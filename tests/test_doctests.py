"""Doctest coverage for the public ``repro.api`` / ``repro.nn.backend``
surfaces.

The docstring examples on the registry, bundle, engine, precision-policy
and backend classes are part of the documented contract (``docs/`` and
the README point at them), so they run as tests: every example must be
runnable, and each module must actually carry examples — a refactor that
silently drops them fails here.  CI additionally runs
``pytest --doctest-modules`` over the same modules, which exercises the
examples under the matrix policies.
"""

from __future__ import annotations

import doctest

import pytest

import repro.api.bundle
import repro.api.engine
import repro.api.registry
import repro.nn.backend

#: (module, minimum number of examples) — the floor guards against
#: docstring rot, not just failures.
DOCTEST_MODULES = [
    (repro.api.bundle, 5),
    (repro.api.engine, 5),
    (repro.api.registry, 5),
    (repro.nn.backend, 10),
]


@pytest.mark.parametrize("module,min_examples", DOCTEST_MODULES,
                         ids=lambda value: getattr(value, "__name__", value))
def test_module_doctests(module, min_examples):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}")
    assert results.attempted >= min_examples, (
        f"{module.__name__} carries only {results.attempted} doctest "
        f"example(s); the documented surface expects >= {min_examples}")
