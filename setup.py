"""Setuptools entry point.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` package (``python setup.py develop``
performs a legacy editable install without building a wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.2.0",
    description=(
        "CGNP: Community Search via Conditional Graph Neural Processes — "
        "a from-scratch reproduction of Fang et al., ICDE 2023"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    # The JIT kernel backend is strictly optional: the default install
    # never imports numba (see repro.nn.backend.make_backend gating).
    extras_require={"numba": ["numba"]},
)
