"""AQD-GNN baseline (❿): query-driven GNN for attributed community search.

Jiang et al. (VLDB 2022) propose a query-driven architecture with three
encoders — a graph encoder, a query encoder and an attribute encoder —
whose representations are fused before prediction.  The paper deploys it
per test task: "AQD-GNN trains the model from scratch by the few-shot data
in S* and tests in Q*".

Our reimplementation (simplification documented in DESIGN.md) keeps the
architectural essence within this codebase's substrate:

* a **graph encoder** GNN over ``[I_q(v) ‖ features]``;
* a **query encoder** — an MLP over the query node's feature vector,
  broadcast to all nodes;
* **fusion** by concatenating node embeddings with the query embedding and
  their elementwise product, followed by an MLP scorer.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..gnn.encoder import GNNEncoder, make_query_features
from ..nn import functional as F
from ..nn.layers import MLP
from ..nn.loss import bce_with_logits
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..tasks.task import QueryExample, Task
from ..utils import derive_rng
from .base import CommunitySearchMethod, QueryPrediction, threshold_prediction
from .common import feature_dim_of_tasks

__all__ = ["AQDGNNConfig", "AQDGNN", "AQDGNNModel"]


@dataclasses.dataclass
class AQDGNNConfig:
    """Architecture and per-task schedule."""

    hidden_dim: int = 128
    num_layers: int = 3
    conv: str = "gat"
    dropout: float = 0.2
    learning_rate: float = 5e-4
    train_steps: int = 200


class AQDGNNModel(Module):
    """Graph + query encoders with multiplicative fusion."""

    def __init__(self, in_dim: int, config: AQDGNNConfig, rng: np.random.Generator):
        super().__init__()
        c = config
        self.graph_encoder = GNNEncoder(in_dim + 1, c.hidden_dim, c.num_layers,
                                        c.conv, c.dropout, rng, activate_final=False)
        self.query_encoder = MLP([in_dim, c.hidden_dim, c.hidden_dim], rng)
        self.scorer = MLP([3 * c.hidden_dim, c.hidden_dim, 1], rng)

    def forward(self, task: Task, example: QueryExample) -> Tensor:
        features = task.features()
        inputs = Tensor(make_query_features(features, example.query))
        node_embeddings = self.graph_encoder(inputs, task.graph)       # (n, h)
        query_embedding = self.query_encoder(
            Tensor(features[int(example.query)].reshape(1, -1)))        # (1, h)
        n = task.graph.num_nodes
        broadcast = Tensor(np.ones((n, 1))).matmul(query_embedding)     # (n, h)
        fused = F.concat([node_embeddings, broadcast,
                          node_embeddings * broadcast], axis=1)
        return self.scorer(fused).reshape(-1)


class AQDGNN(CommunitySearchMethod):
    """Per-task from-scratch AQD-GNN."""

    name = "AQD-GNN"
    trains_meta = False

    def __init__(self, config: Optional[AQDGNNConfig] = None, seed: int = 0):
        self.config = config or AQDGNNConfig()
        self._rng = np.random.default_rng(seed)

    def meta_fit(self, train_tasks: Sequence[Task],
                 valid_tasks: Optional[Sequence[Task]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Per-task method — no meta stage (matches the paper's usage)."""

    def predict_task(self, task: Task) -> List[QueryPrediction]:
        c = self.config
        rng = derive_rng(self._rng)
        in_dim = feature_dim_of_tasks([task])
        model = AQDGNNModel(in_dim, c, rng)
        optimizer = Adam(model.parameters(), lr=c.learning_rate)

        model.train()
        for _ in range(c.train_steps):
            optimizer.zero_grad()
            total = None
            for example in task.support:
                logits = model(task, example)
                nodes, targets = example.label_arrays()
                loss = bce_with_logits(logits.take_rows(nodes), targets,
                                       reduction="sum") * (1.0 / len(nodes))
                total = loss if total is None else total + loss
            total = total * (1.0 / len(task.support))
            total.backward()
            optimizer.step()

        model.eval()
        predictions = []
        with no_grad():
            for example in task.queries:
                probabilities = model(task, example).sigmoid().data
                predictions.append(threshold_prediction(
                    probabilities, example.query, example.membership))
        return predictions


# ----------------------------------------------------------------------
# Registry wiring
# ----------------------------------------------------------------------
from ..api.registry import MethodSpec, register_method  # noqa: E402


@register_method("AQD-GNN", rank=16)
def _build_aqd_gnn(spec: MethodSpec) -> AQDGNN:
    return AQDGNN(AQDGNNConfig(hidden_dim=spec.hidden_dim,
                               num_layers=spec.num_layers, conv=spec.conv,
                               train_steps=spec.per_task_steps),
                  seed=spec.seed)
