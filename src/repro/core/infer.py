"""CGNP meta-testing — Algorithm 2 of the paper.

For a test task ``T* = (G*, Q*, L*)``: the *entire* support set serves as
the context observations; held-out queries are answered by decoder passes
— no parameter updates.  The context is computed once per task (lines 2-4)
and every query of the batch is answered by a *single* vectorised decoder
pass (line 5), matching how :class:`~repro.api.engine.CommunitySearchEngine`
serves online traffic.

Both entry points take the membership ``threshold`` per call and never
write into task-owned arrays: probabilities are fresh matrices and the
ground-truth masks are copied into the predictions.
"""

from __future__ import annotations

import dataclasses
import operator
from typing import Dict, List, Sequence, Union

import numpy as np

from ..graph import Graph
from ..nn.backend import index_dtype_for
from ..nn.tensor import no_grad
from ..tasks.task import Task
from .model import CGNP

__all__ = ["QueryPrediction", "meta_test_task", "predict_memberships",
           "validate_queries"]


@dataclasses.dataclass
class QueryPrediction:
    """Prediction for one held-out query of a test task."""

    query: int
    probabilities: np.ndarray   # membership probability per node
    members: np.ndarray         # predicted community (node ids)
    ground_truth: np.ndarray    # boolean mask (evaluation only)


def validate_queries(graph: Graph,
                     queries: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    """Coerce ``queries`` to a policy-width index array and bounds-check
    every node.

    Raises a :class:`ValueError` naming the offending ids instead of
    letting an out-of-range index surface as a raw numpy error deep in
    the decoder.  Non-integral ids (e.g. ``3.7``) are rejected rather
    than silently truncated to a different node.
    """
    try:
        # Stage at int64: bounds are checked on the full-width values, so
        # an id beyond the int32 policy range reports "out of range"
        # below instead of overflowing the narrow cast.
        indices = np.asarray([operator.index(q) for q in queries],
                             dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ValueError(f"query nodes must be integers: {exc}") from exc
    out_of_range = indices[(indices < 0) | (indices >= graph.num_nodes)]
    if out_of_range.size:
        bad = sorted(set(out_of_range.tolist()))
        raise ValueError(
            f"query node(s) {bad} out of range for a graph with "
            f"{graph.num_nodes} nodes (valid ids: 0..{graph.num_nodes - 1})")
    # index_dtype_for keeps int64 for graphs too large for the policy
    # width (the ids were only bounds-checked against num_nodes).
    return indices.astype(index_dtype_for(graph.num_nodes), copy=False)


def _membership_probabilities(model: CGNP, task: Task,
                              queries: np.ndarray) -> np.ndarray:
    """One context encoding + one batched decoder pass: ``(B, n)`` probs."""
    with no_grad():
        context = model.context(task)  # Algorithm 2 lines 1-4: S* → H
        logits = model.query_logits_batch(context, queries, task.graph)
        return logits.sigmoid().data


def _community_of(probabilities: np.ndarray, query: int,
                  threshold: float) -> np.ndarray:
    members = probabilities >= threshold
    members[query] = True  # q ∈ C_q by definition
    return np.flatnonzero(members)


def meta_test_task(model: CGNP, task: Task, threshold: float = 0.5) -> List[QueryPrediction]:
    """Run Algorithm 2 on every held-out query of ``task``."""
    model.eval()
    if not task.queries:
        return []
    queries = validate_queries(task.graph, [e.query for e in task.queries])
    probabilities = _membership_probabilities(model, task, queries)
    predictions: List[QueryPrediction] = []
    for row, example in zip(probabilities, task.queries):
        # Fresh per-query copy (at the model's own dtype) so predictions
        # never alias the shared probability matrix.
        row = np.array(row)
        predictions.append(QueryPrediction(
            query=example.query,
            probabilities=row,
            members=_community_of(row, example.query, threshold),
            ground_truth=example.membership.copy(),
        ))
    return predictions


def predict_memberships(model: CGNP, task: Task, queries: Sequence[int],
                        threshold: float = 0.5) -> Dict[int, np.ndarray]:
    """Answer arbitrary query nodes (no ground truth needed).

    This is the deployment entry point: any node of the task graph can be
    queried, returning its predicted community.  For a persistent session
    that additionally caches the context across calls, use
    :class:`repro.api.engine.CommunitySearchEngine`.
    """
    model.eval()
    indices = validate_queries(task.graph, queries)
    if indices.size == 0:
        return {}
    probabilities = _membership_probabilities(model, task, indices)
    return {query: _community_of(np.array(row), query, threshold)
            for row, query in zip(probabilities, indices.tolist())}
