"""Tests for loss functions and sparse message-passing primitives."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    Tensor,
    bce_loss,
    bce_with_logits,
    masked_bce_with_logits,
    mse_loss,
    normalized_adjacency,
    row_normalized_adjacency,
    spmm,
)

from helpers import gradcheck


class TestBCE:
    def test_bce_matches_manual(self):
        p = np.array([0.9, 0.1])
        t = np.array([1.0, 0.0])
        expected = -(np.log(0.9) + np.log(0.9))
        loss = bce_loss(Tensor(p), t, reduction="sum")
        np.testing.assert_allclose(float(loss.data), expected, rtol=1e-10)

    def test_bce_with_logits_matches_probability_space(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=10)
        targets = (rng.random(10) > 0.5).astype(np.float64)
        via_logits = float(bce_with_logits(Tensor(logits), targets).data)
        probs = 1.0 / (1.0 + np.exp(-logits))
        manual = float(-(targets * np.log(probs)
                         + (1 - targets) * np.log(1 - probs)).sum())
        np.testing.assert_allclose(via_logits, manual, rtol=1e-8)

    def test_bce_with_logits_extreme_logits_finite(self):
        loss = bce_with_logits(Tensor([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        np.testing.assert_allclose(float(loss.data), 0.0, atol=1e-10)

    def test_bce_with_logits_grad(self):
        rng = np.random.default_rng(1)
        targets = (rng.random(8) > 0.5).astype(np.float64)
        gradcheck(lambda x: bce_with_logits(x, targets), rng.normal(size=8))

    def test_bce_grad(self):
        rng = np.random.default_rng(2)
        targets = (rng.random(6) > 0.5).astype(np.float64)
        probs = rng.uniform(0.05, 0.95, size=6)
        gradcheck(lambda x: bce_loss(x, targets), probs)

    def test_masked_bce_ignores_unlabelled(self):
        logits = Tensor(np.array([5.0, -5.0, 100.0]))
        targets = np.array([1.0, 0.0, 0.0])   # third entry is wrong but masked
        mask = np.array([1.0, 1.0, 0.0])
        masked = float(masked_bce_with_logits(logits, targets, mask).data)
        unmasked_pair = float(bce_with_logits(
            Tensor(np.array([5.0, -5.0])), np.array([1.0, 0.0])).data)
        np.testing.assert_allclose(masked, unmasked_pair, rtol=1e-10)

    def test_reductions(self):
        logits = Tensor(np.zeros(4))
        targets = np.ones(4)
        total = float(bce_with_logits(logits, targets, reduction="sum").data)
        mean = float(bce_with_logits(logits, targets, reduction="mean").data)
        np.testing.assert_allclose(total, 4 * mean)
        none = bce_with_logits(logits, targets, reduction="none")
        assert none.shape == (4,)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor([0.0]), np.array([1.0]), reduction="median")

    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(float(loss.data), 5.0)


class TestSpmm:
    def setup_method(self):
        self.rng = np.random.default_rng(3)
        dense = (self.rng.random((5, 5)) < 0.4).astype(np.float64)
        self.matrix = sp.csr_matrix(dense)

    def test_forward_matches_dense(self):
        x = self.rng.normal(size=(5, 3))
        out = spmm(self.matrix, Tensor(x))
        np.testing.assert_allclose(out.data, self.matrix.toarray() @ x)

    def test_gradient(self):
        x = self.rng.normal(size=(5, 3))
        gradcheck(lambda t: spmm(self.matrix, t), x)

    def test_rejects_dense_left_operand(self):
        with pytest.raises(TypeError):
            spmm(np.eye(3), Tensor(np.ones((3, 2))))


class TestAdjacencyNormalisation:
    def test_symmetric_normalisation_row_sums(self):
        adj = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]],
                                     dtype=np.float64))
        norm = normalized_adjacency(adj)
        # Symmetric and finite.
        np.testing.assert_allclose(norm.toarray(), norm.toarray().T, atol=1e-12)
        assert np.all(np.isfinite(norm.toarray()))

    def test_self_loops_added(self):
        adj = sp.csr_matrix((3, 3))
        norm = normalized_adjacency(adj, add_self_loops=True)
        np.testing.assert_allclose(norm.toarray(), np.eye(3))

    def test_isolated_node_without_loops_gives_zero_row(self):
        adj = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]],
                                     dtype=np.float64))
        norm = normalized_adjacency(adj, add_self_loops=False)
        np.testing.assert_allclose(norm.toarray()[2], 0.0)

    def test_row_normalised_is_stochastic(self):
        adj = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]],
                                     dtype=np.float64))
        row_norm = row_normalized_adjacency(adj)
        np.testing.assert_allclose(row_norm.toarray().sum(axis=1), np.ones(3))

    def test_row_normalised_isolated_node(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=np.float64))
        # Node 1 has outgoing sum 0 (after symmetrisation it wouldn't, but
        # this matrix is used as given): row must be all-zero, not NaN.
        row_norm = row_normalized_adjacency(sp.csr_matrix((2, 2)))
        assert np.all(np.isfinite(row_norm.toarray()))
