"""CGNP — Community Search: A Meta-Learning Approach (ICDE 2023).

A from-scratch Python reproduction of the Conditional Graph Neural Process
framework of Fang, Zhao, Li & Yu, including the full neural substrate
(autograd, GNN layers), the graph substrate (k-core/k-truss, samplers,
synthetic datasets with ground-truth communities), every compared baseline,
and a harness regenerating each table and figure of the paper.

The public surface is organised around the paper's *deploy-once,
query-many* regime (``repro.api``): a :class:`MethodRegistry` resolving
every paper method name, self-describing :class:`ModelBundle` checkpoints,
and the :class:`CommunitySearchEngine` session facade that caches a task's
context encoding and answers query batches with one decoder pass.

Quickstart
----------
>>> from repro import (CommunitySearchEngine, MethodSpec, ModelBundle,
...                    ScenarioConfig, create_method, make_rng, make_scenario)
>>> config = ScenarioConfig(num_train_tasks=8, num_valid_tasks=2,
...                         num_test_tasks=2, subgraph_nodes=60, num_query=5)
>>> tasks = make_scenario("sgsc", "cora", config, scale=0.25)
>>> method = create_method(MethodSpec(name="CGNP-IP", hidden_dim=32,
...                                   num_layers=2, cgnp_epochs=10))
>>> method.meta_fit(tasks.train, tasks.valid, make_rng(0))
>>> _ = ModelBundle.from_model(method.model).save("model.npz")   # doctest: +SKIP
>>> engine = CommunitySearchEngine(method.model).attach(tasks.test[0])
>>> community = engine.query(tasks.test[0].queries[0].query)

The pre-registry entry points (``meta_train``/``meta_test_task``/
``predict_memberships``, direct :class:`CGNP` construction) remain
first-class exports.
"""

from . import (
    algorithms,
    api,
    baselines,
    core,
    datasets,
    eval,
    gnn,
    graph,
    meta,
    nn,
    tasks,
    utils,
)
from .api import (
    CommunitySearchEngine,
    EngineStats,
    MethodRegistry,
    MethodSpec,
    ModelBundle,
    available_methods,
    create_method,
    register_method,
)
from .core import (
    CGNP,
    CGNPConfig,
    MetaTrainConfig,
    meta_test_task,
    meta_train,
    predict_memberships,
)
from .datasets import load_dataset
from .eval import (
    Metrics,
    ResultsStore,
    RunRecord,
    binary_metrics,
    community_metrics,
    evaluate_method,
    format_metric_table,
)
from .meta import MethodSelector, task_meta_features
from .graph import Graph
from .tasks import QueryExample, ScenarioConfig, Task, TaskSet, make_scenario
from .utils import make_rng

__version__ = "0.2.0"

__all__ = [
    "nn",
    "graph",
    "datasets",
    "tasks",
    "gnn",
    "core",
    "baselines",
    "algorithms",
    "eval",
    "meta",
    "utils",
    "api",
    "CommunitySearchEngine",
    "EngineStats",
    "ModelBundle",
    "MethodRegistry",
    "MethodSpec",
    "register_method",
    "create_method",
    "available_methods",
    "CGNP",
    "CGNPConfig",
    "MetaTrainConfig",
    "meta_train",
    "meta_test_task",
    "predict_memberships",
    "Graph",
    "load_dataset",
    "Task",
    "TaskSet",
    "QueryExample",
    "ScenarioConfig",
    "make_scenario",
    "make_rng",
    "Metrics",
    "binary_metrics",
    "community_metrics",
    "evaluate_method",
    "format_metric_table",
    "ResultsStore",
    "RunRecord",
    "MethodSelector",
    "task_meta_features",
    "__version__",
]
