"""Sparse-dense products for graph message passing.

GNN convolutions multiply a (constant) sparse adjacency-like matrix with a
dense, differentiable feature matrix.  The adjacency operator itself is never
learned, so its gradient is not tracked; the VJP w.r.t. the dense operand is
``Aᵀ @ grad``.

The left operand must already be CSR — the cached-operator convention of
:func:`repro.gnn.conv.graph_ops`, which also caches the pre-transposed
backward operator so neither direction converts formats per call.  Both
directions dispatch through the active
:class:`~repro.nn.backend.ArrayBackend`.  Normalised adjacencies are built
at an explicit element dtype (defaulting to the ambient precision policy)
and index dtype (defaulting to the ambient index policy, int32), so one
graph can hold cached ``(op, elem_dtype, index_dtype)`` operator variants
side by side.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .backend import get_backend, resolve_dtype, resolve_index_dtype
from .tensor import Tensor, as_tensor

__all__ = ["spmm", "normalized_adjacency", "row_normalized_adjacency"]


def spmm(matrix: sp.spmatrix, dense: Tensor,
         matrix_t: Optional[sp.spmatrix] = None) -> Tensor:
    """Sparse @ dense product, differentiable in the dense operand.

    Parameters
    ----------
    matrix:
        CSR matrix of shape ``(m, n)``; treated as a constant.  Other
        sparse formats are rejected — convert once at operator-build time
        (:func:`repro.gnn.conv.graph_ops` does) rather than per forward.
    dense:
        Dense tensor of shape ``(n, d)`` (or ``(n,)``).
    matrix_t:
        Optional pre-transposed operator (``matrix.T``) reused by the
        backward pass.  Without it the backward falls back to the O(1)
        CSC transpose view of ``matrix``.
    """
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix as the left operand")
    if matrix.format != "csr":
        raise TypeError(
            f"spmm requires a CSR operator, got {matrix.format!r}; convert "
            f"with .tocsr() once when building the operator, not per call")
    dense = as_tensor(dense)
    xp = get_backend()
    out_data = xp.spmm(matrix, dense.data)

    def backward(grad: np.ndarray) -> None:
        operator_t = matrix_t if matrix_t is not None else matrix.T
        Tensor._accumulate(dense, xp.spmm(operator_t, grad))

    return Tensor._make(np.asarray(out_data), (dense,), backward)


def _as_csr(adjacency: sp.spmatrix, dtype: Optional[object],
            index_dtype: Optional[object] = None) -> sp.csr_matrix:
    """CSR view of ``adjacency`` at the resolved element and index dtypes,
    copying only the arrays whose width actually differs."""
    return get_backend().to_operator(adjacency, dtype=resolve_dtype(dtype),
                                     index_dtype=resolve_index_dtype(index_dtype))


def _with_self_loops(adj: sp.csr_matrix) -> sp.csr_matrix:
    """``Â = A + I``, skipping the full-matrix copy when every diagonal
    entry is already present.

    A matrix carrying a full diagonal is treated as *already self-looped*
    (``Â = A``) rather than receiving a second loop on top.
    :class:`~repro.graph.graph.Graph` adjacencies never contain diagonal
    entries (edge canonicalisation drops self-loops), so for every graph
    in this repository the two readings coincide; the skip only changes
    the result for externally-supplied operators that were explicitly
    built with their self-loops in place — which is exactly the case
    where adding ``I`` again would be wrong.
    """
    diagonal = adj.diagonal()
    if diagonal.size and np.all(diagonal != 0):
        return adj
    return adj + sp.eye(adj.shape[0], format="csr", dtype=adj.dtype)


def normalized_adjacency(adjacency: sp.spmatrix, add_self_loops: bool = True,
                         dtype: Optional[object] = None,
                         index_dtype: Optional[object] = None) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes (degree zero after optional self-loops) receive zero rows
    rather than NaNs.  ``dtype``/``index_dtype`` default to the ambient
    precision and index policies; the diagonal scaling runs through scipy
    (which may widen the structure arrays), so the result is
    re-canonicalised before it becomes a cached operator.
    """
    adj = _as_csr(adjacency, dtype, index_dtype)
    if add_self_loops:
        adj = _with_self_loops(adj)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    d_inv_sqrt = sp.diags(inv_sqrt)
    return _as_csr(d_inv_sqrt @ adj @ d_inv_sqrt, dtype, index_dtype)


def row_normalized_adjacency(adjacency: sp.spmatrix,
                             dtype: Optional[object] = None,
                             index_dtype: Optional[object] = None) -> sp.csr_matrix:
    """Row-stochastic ``D^{-1} A`` — the GraphSAGE mean aggregator operator.

    ``dtype``/``index_dtype`` default to the ambient precision and index
    policies.
    """
    adj = _as_csr(adjacency, dtype, index_dtype)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return _as_csr(sp.diags(inv) @ adj, dtype, index_dtype)
