"""Evaluation metrics: accuracy, precision, recall, F1.

The paper scores a predicted community against the full ground-truth
community over the nodes of the task graph, excluding the query node
itself (it is trivially a member).  F1 is the headline metric because the
positive class is small — a model predicting "nobody" reaches high
accuracy but zero recall, which is exactly the failure mode Table II shows
for the optimisation-based baselines.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["Metrics", "binary_metrics", "community_metrics", "mean_metrics"]


@dataclasses.dataclass(frozen=True)
class Metrics:
    """Accuracy / precision / recall / F1 bundle."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (f"acc={self.accuracy:.4f} pre={self.precision:.4f} "
                f"rec={self.recall:.4f} f1={self.f1:.4f}")


def binary_metrics(predicted: np.ndarray, actual: np.ndarray) -> Metrics:
    """Metrics from two boolean masks of equal length.

    Degenerate conventions (all consistent with scikit-learn's
    ``zero_division=0``): precision is 0 when nothing is predicted
    positive, recall is 0 when there are no actual positives, and F1 is 0
    whenever precision + recall is 0.
    """
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if predicted.size == 0:
        raise ValueError("cannot score empty masks")

    true_positive = int(np.sum(predicted & actual))
    false_positive = int(np.sum(predicted & ~actual))
    false_negative = int(np.sum(~predicted & actual))
    true_negative = int(np.sum(~predicted & ~actual))

    total = true_positive + false_positive + false_negative + true_negative
    accuracy = (true_positive + true_negative) / total
    precision = (true_positive / (true_positive + false_positive)
                 if true_positive + false_positive > 0 else 0.0)
    recall = (true_positive / (true_positive + false_negative)
              if true_positive + false_negative > 0 else 0.0)
    f1 = (2.0 * precision * recall / (precision + recall)
          if precision + recall > 0 else 0.0)
    return Metrics(accuracy=accuracy, precision=precision, recall=recall, f1=f1)


def community_metrics(predicted_members: Iterable[int], ground_truth: np.ndarray,
                      query: int) -> Metrics:
    """Score a predicted community (node ids) against a ground-truth mask.

    The query node is excluded from scoring on both sides.
    """
    ground_truth = np.asarray(ground_truth, dtype=bool)
    predicted = np.zeros_like(ground_truth)
    members = np.asarray(list(predicted_members), dtype=np.int64)
    if members.size:
        predicted[members] = True
    keep = np.ones_like(ground_truth)
    keep[int(query)] = False
    return binary_metrics(predicted[keep], ground_truth[keep])


def mean_metrics(metrics: Sequence[Metrics]) -> Metrics:
    """Unweighted mean of metric bundles (the paper averages per query)."""
    if not metrics:
        raise ValueError("cannot average an empty metric list")
    return Metrics(
        accuracy=float(np.mean([m.accuracy for m in metrics])),
        precision=float(np.mean([m.precision for m in metrics])),
        recall=float(np.mean([m.recall for m in metrics])),
        f1=float(np.mean([m.f1 for m in metrics])),
    )
