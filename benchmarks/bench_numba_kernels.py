"""Benchmark — NumbaBackend JIT kernels vs the NumPy reference backend.

Measures the two surfaces the numba backend exists for and writes an
honest ``BENCH_numba.json`` perf record:

* **GAT edge path** — a full ``GATConv`` forward + backward (gather →
  leaky-relu logits → fused segment softmax → scatter-add) on a
  paper-scale graph, NumPy vs numba, with the **cold** first call (JIT
  compilation, or on-disk cache load on a warm machine) timed separately
  from the **warm** steady state.  This is where the ≥1.5x bar applies.
* **raw kernels** — backend-level spmm / gather / scatter-add / fused
  segment-softmax timings on one large operator, plus the parity checks
  (bitwise for spmm/gather/scatter; relative tolerance for the fused
  softmax, whose ``exp`` may differ from NumPy's by ulps).
* **end-to-end serving** — engine queries/second on the synthetic SGSC
  smoke config with a GAT encoder, float32/int32 (the recommended
  serving policy).

When the numba wheel is absent the script still succeeds: it writes a
record with ``"available": false`` and a note, so CI's bench-smoke job
tolerates the optional backend being missing instead of erroring.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_numba_kernels.py [--tiny]

or through pytest (skips without numba)::

    PYTHONPATH=src python -m pytest benchmarks/bench_numba_kernels.py -s

The pytest entry always enforces parity; the ≥1.5x warm-JIT bar on the
GAT edge path applies on 2+ cores (the spmm kernels parallelise with
``prange``; the scatter/softmax kernels win by replacing ``np.add.at``
and multi-pass numpy with fused compiled loops).  Below that the record
keeps the honest number with a ``note``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.api import CommunitySearchEngine, ModelBundle
from repro.core import CGNP, CGNPConfig, task_batch_loss
from repro.datasets import clear_cache, load_dataset
from repro.gnn.conv import GATConv, graph_ops
from repro.graph import attributed_community_graph
from repro.nn.backend import (NumpyBackend, available_backends, make_backend,
                              index_precision, precision, use_backend)
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.tasks import ScenarioConfig, TaskSampler, make_scenario
from repro.utils import make_rng

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "BENCH_numba.json")

SMOKE = dict(dataset="arxiv", num_tasks=8, subgraph_nodes=220, num_support=3,
             num_query=12, hidden_dim=128, num_layers=2, epochs=2, scale=0.5,
             task_batch_size=8, serve_nodes=600, serve_batch=256,
             serve_rounds=30,
             edge_nodes=30_000, edge_degree=12, edge_features=64,
             edge_hidden=64, edge_heads=2, edge_repeats=5)
TINY = dict(dataset="arxiv", num_tasks=4, subgraph_nodes=60, num_support=2,
            num_query=6, hidden_dim=32, num_layers=2, epochs=1, scale=0.3,
            task_batch_size=4, serve_nodes=120, serve_batch=64,
            serve_rounds=10,
            edge_nodes=3_000, edge_degree=8, edge_features=16,
            edge_hidden=16, edge_heads=2, edge_repeats=3)


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# GAT edge path: forward + backward through one attention layer
# ---------------------------------------------------------------------------
def build_edge_fixture(params: Dict, seed: int = 0):
    graph = attributed_community_graph(
        num_nodes=params["edge_nodes"], num_communities=8,
        avg_degree=float(params["edge_degree"]), mixing=0.15,
        num_attributes=params["edge_features"], rng=make_rng(seed),
        name="numba-edge-bench")
    ops = graph_ops(graph)
    layer = GATConv(params["edge_features"], params["edge_hidden"],
                    make_rng(seed + 1), num_heads=params["edge_heads"])
    features = make_rng(seed + 2).standard_normal(
        (graph.num_nodes, params["edge_features"]))
    return ops, layer, features


def time_edge_path(params: Dict, numba_backend) -> Dict:
    ops, layer, features = build_edge_fixture(params)
    num_edges = int(ops.edge_src.shape[0])
    print(f"  edge fixture: {ops.num_nodes} nodes, {num_edges} directed "
          f"edges (incl. self-loops), {params['edge_heads']} heads")

    def forward_backward() -> np.ndarray:
        for parameter in layer.parameters():
            parameter.zero_grad()
        x = Tensor(features, requires_grad=False)
        out = layer.forward(x, ops)
        out.sum().backward()
        return out.data

    with use_backend(NumpyBackend()):
        reference = forward_backward()
        numpy_seconds = _best_time(forward_backward, params["edge_repeats"])
    print(f"  edge[numpy] {numpy_seconds * 1e3:8.1f} ms")

    with use_backend(numba_backend):
        cold_start = time.perf_counter()
        result = forward_backward()
        cold_seconds = time.perf_counter() - cold_start
        warm_seconds = _best_time(forward_backward, params["edge_repeats"])
    gap = float(np.max(np.abs(result - reference)
                       / np.maximum(np.abs(reference), 1e-30)))
    speedup = numpy_seconds / warm_seconds
    print(f"  edge[numba cold] {cold_seconds * 1e3:8.1f} ms "
          f"(includes JIT compile or on-disk cache load)")
    print(f"  edge[numba warm] {warm_seconds * 1e3:8.1f} ms "
          f"-> {speedup:4.2f}x, max rel gap {gap:.2e}")
    return {"num_edges": num_edges, "numpy_seconds": numpy_seconds,
            "numba_cold_seconds": cold_seconds,
            "numba_warm_seconds": warm_seconds,
            "speedup_warm_vs_numpy": speedup,
            "max_relative_gap": gap}


# ---------------------------------------------------------------------------
# Raw kernel sweep + parity
# ---------------------------------------------------------------------------
def run_raw_kernels(params: Dict, numba_backend) -> Dict:
    rng = np.random.default_rng(3)
    nodes = params["edge_nodes"]
    edges = nodes * params["edge_degree"]
    with precision("float32"), index_precision("int32"):
        ops, _, _ = build_edge_fixture(params, seed=4)
    dense = rng.standard_normal(
        (nodes, params["edge_hidden"])).astype(np.float32)
    segments = rng.integers(0, nodes, size=edges).astype(np.int32)
    scores = rng.standard_normal(edges).astype(np.float32)
    messages = rng.standard_normal(
        (edges, params["edge_hidden"])).astype(np.float32)
    reference = NumpyBackend()
    results: Dict[str, Dict] = {}
    checks: List[bool] = []
    for name, ref_fn, jit_fn, bitwise in (
            ("spmm",
             lambda: reference.spmm(ops.norm_adj, dense),
             lambda: numba_backend.spmm(ops.norm_adj, dense), True),
            ("gather",
             lambda: reference.gather_rows(dense, segments),
             lambda: numba_backend.gather_rows(dense, segments), True),
            ("scatter_add",
             lambda: reference.scatter_add_rows(messages, segments, nodes),
             lambda: numba_backend.scatter_add_rows(messages, segments,
                                                    nodes), True),
            ("segment_softmax",
             lambda: reference.segment_softmax(scores, segments, nodes),
             lambda: numba_backend.segment_softmax(scores, segments, nodes),
             False)):
        expected = ref_fn()
        got = jit_fn()          # warm-up / compile before timing
        if bitwise:
            equal = bool(np.array_equal(expected, got))
        else:
            equal = bool(np.allclose(expected, got, rtol=1e-5, atol=0.0))
        checks.append(equal)
        ref_seconds = _best_time(ref_fn)
        jit_seconds = _best_time(jit_fn)
        speedup = ref_seconds / jit_seconds
        results[name] = {"numpy_seconds": ref_seconds,
                         "numba_seconds": jit_seconds,
                         "speedup": speedup, "parity_ok": equal}
        print(f"  raw[{name:<15}] numpy {ref_seconds * 1e3:7.2f} ms, "
              f"numba {jit_seconds * 1e3:7.2f} ms -> {speedup:5.2f}x "
              f"(parity {'ok' if equal else 'FAIL'})")
    results["all_parity_ok"] = all(checks)
    return results


# ---------------------------------------------------------------------------
# End-to-end serving (GAT encoder, float32/int32)
# ---------------------------------------------------------------------------
def build_tasks(params: Dict, seed: int = 0):
    config = ScenarioConfig(
        num_train_tasks=params["num_tasks"], num_valid_tasks=1,
        num_test_tasks=1, subgraph_nodes=params["subgraph_nodes"],
        num_support=params["num_support"], num_query=params["num_query"],
        seed=seed)
    return make_scenario("sgsc", params["dataset"], config,
                         scale=params["scale"]).train


def build_model(tasks, params: Dict, seed: int = 5) -> CGNP:
    return CGNP(tasks[0].features().shape[1],
                CGNPConfig(hidden_dim=params["hidden_dim"],
                           num_layers=params["num_layers"], conv="gat",
                           decoder="ip"), make_rng(seed))


def run_epochs(model: CGNP, tasks, epochs: int, rng,
               task_batch_size: int) -> None:
    optimizer = Adam(model.parameters(), lr=5e-4)
    model.train()
    order = np.arange(len(tasks))
    for _ in range(epochs):
        rng.shuffle(order)
        for start in range(0, len(order), task_batch_size):
            chunk = [tasks[int(i)] for i in order[start:start + task_batch_size]]
            optimizer.zero_grad()
            loss = task_batch_loss(model, chunk)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()


def time_serving(params: Dict, numba_backend) -> List[Dict]:
    with precision("float32"):
        clear_cache()
        tasks = build_tasks(params)
        model = build_model(tasks, params)
        run_epochs(model, tasks, params["epochs"], make_rng(2),
                   params["task_batch_size"])
        model.eval()
        bundle = ModelBundle.from_model(model, provenance={
            "benchmark": "bench_numba_kernels", "dataset": params["dataset"]})
        dataset = load_dataset(params["dataset"], scale=params["scale"])
        sampler = TaskSampler(dataset.graph,
                              subgraph_nodes=params["serve_nodes"],
                              num_support=params["num_support"],
                              num_query=params["num_query"])
        serve_task = sampler.sample_task(make_rng(7))
    rng = make_rng(13)
    batches = [rng.integers(0, serve_task.graph.num_nodes,
                            size=params["serve_batch"])
               for _ in range(params["serve_rounds"])]
    results = []
    probabilities = {}
    for label, backend in (("numpy", NumpyBackend()),
                           ("numba", numba_backend)):
        with use_backend(backend), precision("float32"):
            engine = CommunitySearchEngine.from_bundle(bundle, dtype="float32")
            engine.attach(serve_task)
            for batch in batches[:2]:      # warm-up (and JIT, for numba)
                engine.predict_proba(batch)
            probabilities[label] = engine.predict_proba(batches[0])
            start = time.perf_counter()
            for batch in batches:
                engine.predict_proba(batch)
            elapsed = time.perf_counter() - start
        served = params["serve_batch"] * params["serve_rounds"]
        throughput = served / elapsed
        print(f"  serve[{label:<5}] {served:5d} queries in {elapsed:7.3f}s "
              f"-> {throughput:9.0f} queries/s")
        results.append({"backend": label, "seconds": elapsed,
                        "queries": served,
                        "queries_per_second": throughput})
    gap = float(np.max(np.abs(probabilities["numpy"]
                              - probabilities["numba"])))
    print(f"  serving parity: max |Δprob| = {gap:.2e}")
    results.append({"max_probability_gap": gap})
    return results


# ---------------------------------------------------------------------------
# Record assembly
# ---------------------------------------------------------------------------
def unavailable_record(out_path: str) -> Dict:
    """The honest record for a numba-less host — bench-smoke and the
    committed default must not error on a missing optional backend."""
    cpus = cpu_count()
    record = {
        "benchmark": "numba_jit_kernels_vs_numpy",
        "available": False,
        "cpu_count": cpus,
        "note": (
            f"the numba wheel is not installed on this {cpus}-CPU host, so "
            f"no JIT timings could be measured; `pip install numba` and "
            f"rerun benchmarks/bench_numba_kernels.py to fill this record.  "
            f"The ≥1.5x warm-JIT bar on the GAT edge path applies on hosts "
            f"with 2+ cores; CI's bench-multicore job regenerates this "
            f"record as a build artifact."),
    }
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"  numba not installed -> wrote unavailable record {out_path}")
    return record


def run_benchmark(params: Dict, out_path: str) -> Dict:
    if not available_backends()["numba"]:
        return unavailable_record(out_path)
    cpus = cpu_count()
    numba_backend = make_backend("numba")
    print(f"[bench_numba_kernels] {cpus} CPU(s) visible, "
          f"{numba_backend.num_threads} numba threads")

    print("-- GAT edge path (forward + backward, float64 default policy)")
    edge = time_edge_path(params, numba_backend)
    print("-- raw kernels (float32 elements, int32 indices)")
    raw = run_raw_kernels(params, numba_backend)
    print("-- engine serving (GAT encoder, float32/int32)")
    serving = time_serving(params, numba_backend)

    serve_speedup = (serving[1]["queries_per_second"]
                     / serving[0]["queries_per_second"])
    record = {
        "benchmark": "numba_jit_kernels_vs_numpy",
        "available": True,
        "cpu_count": cpus,
        "numba_threads": numba_backend.num_threads,
        "config": dict(params, scenario="sgsc", conv="gat", decoder="ip",
                       serving_dtype="float32", index_dtype="int32"),
        "gat_edge_path": edge,
        "raw_kernels": raw,
        "serving": serving,
        "speedup_gat_edge_path_warm": edge["speedup_warm_vs_numpy"],
        "speedup_serving_numba_vs_numpy": serve_speedup,
        "cold_jit_seconds": edge["numba_cold_seconds"],
    }
    note = (f"measured on a {cpus}-CPU host; cold timings include JIT "
            f"compilation (or the on-disk cache load that `cache=True` "
            f"reduces them to after the first run on a machine).")
    if cpus < 2:
        note += (
            "  Single-core host: the prange spmm kernels cannot exhibit "
            "parallel speedup here, so the edge-path ratio under-reports "
            "what 2+ cores deliver; the ≥1.5x bar applies on multi-core "
            "hosts (CI's bench-multicore job).")
    record["note"] = note
    print(f"  GAT edge path {edge['speedup_warm_vs_numpy']:.2f}x warm | "
          f"serving {serve_speedup:.2f}x")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"  wrote {out_path}")
    return record


def test_numba_kernels_parity_and_speedup(tmp_path):
    """Pytest entry: parity always; the ≥1.5x warm bar on 2+ cores.

    One retry absorbs a transiently loaded CPU without weakening the bar.
    """
    import pytest

    pytest.importorskip("numba")
    cpus = cpu_count()
    best = 0.0
    for _attempt in range(2):
        record = run_benchmark(dict(SMOKE),
                               out_path=str(tmp_path / "BENCH_numba.json"))
        assert record["raw_kernels"]["all_parity_ok"]
        assert record["gat_edge_path"]["max_relative_gap"] < 1e-9
        assert record["serving"][-1]["max_probability_gap"] < 1e-5
        best = max(best, record["speedup_gat_edge_path_warm"])
        if best >= 1.5:
            break
    if cpus < 2:
        pytest.skip(f"single-CPU host ({cpus} visible): parity verified, "
                    f"best warm edge-path ratio {best:.2f}x recorded")
    assert best >= 1.5, (
        f"warm numba GAT edge path only {best:.2f}x vs numpy on a "
        f"{cpus}-CPU host (bar: 1.5x)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI-sized config (seconds, not minutes)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="perf-record JSON path")
    args = parser.parse_args()
    run_benchmark(dict(TINY if args.tiny else SMOKE), out_path=args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
