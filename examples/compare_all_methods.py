"""Reproduce one full Table II cell: every method on Citeseer SGSC.

Runs the complete 11-method comparison (3 graph algorithms where
applicable, 7 learned baselines, 3 CGNP variants) at a reduced scale and
prints the paper-style table with best/second-best F1 marked.

Expect a few minutes on CPU.  Run:  python examples/compare_all_methods.py
"""

from repro.eval import (
    PAPER_REFERENCE_F1,
    PROFILES,
    format_metric_table,
    format_time_table,
    run_effectiveness,
)

METHODS = ("ATC", "ACQ", "CTC", "MAML", "Reptile", "FeatTrans", "GPN",
           "Supervised", "ICS-GNN", "AQD-GNN",
           "CGNP-IP", "CGNP-MLP", "CGNP-GNN")


def main() -> None:
    profile = PROFILES["smoke"]
    print(f"profile: {profile.name} ({profile.num_train_tasks} train tasks, "
          f"{profile.subgraph_nodes}-node subgraphs, "
          f"{profile.cgnp_epochs} CGNP epochs)")

    results = run_effectiveness("sgsc", "citeseer", profile, shots=(1,),
                                method_names=METHODS, seed=7)[1]

    print("\n" + format_metric_table(
        results, title="Citeseer SGSC 1-shot — all methods"))
    print("\n" + format_time_table(results, title="Wall-clock per method"))

    reference = PAPER_REFERENCE_F1[("citeseer", "sgsc", 1)]
    print("\npaper Table II F1 reference (full scale):")
    for method, f1 in sorted(reference.items(), key=lambda kv: -kv[1]):
        print(f"  {method:<12} {f1:.4f}")
    print("\nCompare shapes, not magnitudes: the substrate is synthetic and "
          "the scale reduced; what should agree is the ranking pattern "
          "(CGNP variants on top via recall, truss/core algorithms "
          "precision-heavy, optimisation-based meta-learners behind).")


if __name__ == "__main__":
    main()
