"""Open-loop synthetic load generation: single-query loop vs gateway.

*Open loop* means arrivals follow a fixed stochastic schedule (Poisson:
exponential inter-arrival times at a target rate) that does **not** slow
down when the server falls behind — the honest way to measure tail
latency, because a closed loop (next request only after the previous
answer) silently throttles the offered load exactly when the server is
saturated, hiding the queueing delay a real deployment would see.

Two drivers share one arrival schedule and one request stream:

* :func:`run_baseline` — the pre-gateway serving model: a sequential
  loop answering each request with its own
  ``engine.predict_proba(nodes)`` call the moment the server is free.
  Latency of request *i* is ``completion_i - arrival_i`` — queueing
  delay included.
* :func:`run_gateway` — the same schedule submitted concurrently to a
  :class:`~repro.serve.gateway.ServeGateway`; the ticker coalesces
  whatever is waiting into per-tick decoder passes.

Both produce a :class:`LoadResult` with exact (not histogram-estimated)
p50/p95/p99 over the per-request latencies, plus achieved QPS over the
actual makespan — under overload the makespan exceeds the schedule
length, so QPS converges to the server's saturation capacity.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..api.engine import CommunitySearchEngine
from ..tasks.task import Task
from .gateway import GatewayConfig, ServeGateway
from .queue import QueueFull

__all__ = ["LoadResult", "open_loop_arrivals", "request_nodes",
           "run_baseline", "run_gateway"]


@dataclasses.dataclass
class LoadResult:
    """Latency/throughput summary of one open-loop run."""

    mode: str                      # "baseline-loop" | "gateway"
    rate: float                    # offered arrivals per second
    offered: int                   # scheduled requests
    completed: int
    rejected: int
    makespan_seconds: float        # first arrival -> last completion
    qps: float                     # completed / makespan
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float

    @classmethod
    def from_latencies(cls, mode: str, rate: float, offered: int,
                       rejected: int, makespan: float,
                       latencies: Sequence[float]) -> "LoadResult":
        values = np.asarray(list(latencies), dtype=np.float64)
        if values.size == 0:
            return cls(mode=mode, rate=rate, offered=offered, completed=0,
                       rejected=rejected, makespan_seconds=makespan, qps=0.0,
                       latency_mean=0.0, latency_p50=0.0, latency_p95=0.0,
                       latency_p99=0.0, latency_max=0.0)
        p50, p95, p99 = np.percentile(values, [50, 95, 99])
        return cls(
            mode=mode, rate=rate, offered=offered, completed=int(values.size),
            rejected=rejected, makespan_seconds=float(makespan),
            qps=float(values.size / makespan) if makespan > 0 else 0.0,
            latency_mean=float(values.mean()), latency_p50=float(p50),
            latency_p95=float(p95), latency_p99=float(p99),
            latency_max=float(values.max()))

    def as_dict(self) -> Dict[str, Any]:
        return {key: (value.item() if isinstance(value, np.generic)
                      else value)
                for key, value in dataclasses.asdict(self).items()}

    def describe(self) -> str:
        return (f"{self.mode:<13} rate={self.rate:7.1f}/s "
                f"completed={self.completed:5d}/{self.offered:<5d} "
                f"qps={self.qps:7.1f} p50={self.latency_p50 * 1e3:8.2f}ms "
                f"p99={self.latency_p99 * 1e3:8.2f}ms")


def open_loop_arrivals(rate: float, duration: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Poisson arrival offsets (seconds) at ``rate``/s over ``duration``.

    Deterministic given the generator state, so the baseline and the
    gateway replay the *identical* schedule.
    """
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    # Draw enough exponential gaps to cover the window, then trim.
    expected = max(int(rate * duration * 1.5), 16)
    gaps = rng.exponential(1.0 / rate, size=expected)
    arrivals = np.cumsum(gaps)
    while arrivals[-1] < duration:                  # pragma: no cover - rare
        extra = rng.exponential(1.0 / rate, size=expected)
        arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
    return arrivals[arrivals < duration]


def request_nodes(task: Task, count: int, nodes_per_request: int,
                  rng: np.random.Generator) -> List[np.ndarray]:
    """One random query-node batch per scheduled request."""
    return [rng.integers(0, task.graph.num_nodes,
                         size=nodes_per_request).astype(np.int64)
            for _ in range(count)]


def run_baseline(engine: CommunitySearchEngine, task: Task,
                 arrivals: np.ndarray,
                 node_batches: Sequence[np.ndarray]) -> LoadResult:
    """The single-query loop: sequential ``predict_proba`` per request."""
    rate = len(arrivals) / float(arrivals[-1]) if len(arrivals) else 0.0
    engine.attach(task)             # context encoded outside the timing
    latencies: List[float] = []
    start = time.perf_counter()
    for arrival, nodes in zip(arrivals.tolist(), node_batches):
        now = time.perf_counter() - start
        if now < arrival:
            time.sleep(arrival - now)
        engine.predict_proba(nodes, task)
        latencies.append((time.perf_counter() - start) - arrival)
    makespan = time.perf_counter() - start
    return LoadResult.from_latencies("baseline-loop", rate, len(arrivals),
                                     rejected=0, makespan=makespan,
                                     latencies=latencies)


async def _drive_gateway(gateway: ServeGateway, task: Task,
                         arrivals: np.ndarray,
                         node_batches: Sequence[np.ndarray],
                         wait_for_slot: bool):
    loop = asyncio.get_running_loop()
    start = loop.time()
    latencies: List[float] = []
    rejected = 0

    async def one(arrival: float, nodes: np.ndarray) -> None:
        nonlocal rejected
        delay = (start + arrival) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            await gateway.submit(nodes, task, wait=wait_for_slot)
        except QueueFull:
            rejected += 1
            return
        # Open-loop latency: measured from the *scheduled* arrival, so
        # time lost to a blocked event loop counts against the server.
        latencies.append(loop.time() - (start + arrival))

    await asyncio.gather(*[one(float(arrival), nodes) for arrival, nodes
                           in zip(arrivals, node_batches)])
    return latencies, rejected, loop.time() - start


def run_gateway(engine: CommunitySearchEngine, task: Task,
                arrivals: np.ndarray, node_batches: Sequence[np.ndarray],
                config: Optional[GatewayConfig] = None,
                wait_for_slot: bool = False,
                stats_out: Optional[list] = None) -> LoadResult:
    """The coalescing gateway under the same open-loop schedule.

    ``stats_out``, if given, receives the gateway's final
    :class:`~repro.serve.stats.ServeStats` snapshot (appended) — the CLI
    uses it to print the scrapeable metrics after a run.
    """
    rate = len(arrivals) / float(arrivals[-1]) if len(arrivals) else 0.0
    engine.attach(task)             # context encoded outside the timing

    async def scenario():
        async with ServeGateway(engine, config) as gateway:
            driven = await _drive_gateway(gateway, task, arrivals,
                                          node_batches, wait_for_slot)
            if stats_out is not None:
                stats_out.append(gateway.stats())
            return driven

    latencies, rejected, makespan = asyncio.run(scenario())
    return LoadResult.from_latencies("gateway", rate, len(arrivals),
                                     rejected=rejected, makespan=makespan,
                                     latencies=latencies)
