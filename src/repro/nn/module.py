"""Module / Parameter abstractions, mirroring ``torch.nn.Module``.

A :class:`Module` owns :class:`Parameter` leaves and child modules, exposes
flat iteration over all parameters, a ``state_dict`` for (de)serialisation,
and a train/eval switch that propagates to children (used by dropout).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .backend import resolve_dtype
from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor registered as a learnable leaf of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every learned component in the repository.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; the base class tracks them automatically (insertion order is
    preserved so ``state_dict`` keys are stable).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (useful for model-size reporting)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter (and pending grad) to ``dtype`` in place.

        Used when re-serving a checkpoint at a different precision than
        it was trained at (e.g. float64-trained weights served float32).
        """
        target = resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != target:
                param.data = param.data.astype(target)
            if param.grad is not None and param.grad.dtype != target:
                param.grad = param.grad.astype(target)
        return self

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()

    def clone_state(self) -> Dict[str, np.ndarray]:
        """Alias of :meth:`state_dict`; reads better at meta-learning call sites."""
        return self.state_dict()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """An indexable container of sub-modules (like ``torch.nn.ModuleList``)."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise RuntimeError("ModuleList is a container and cannot be called")
