"""Sparse-dense products for graph message passing.

GNN convolutions multiply a (constant) sparse adjacency-like matrix with a
dense, differentiable feature matrix.  The adjacency operator itself is never
learned, so its gradient is not tracked; the VJP w.r.t. the dense operand is
``Aᵀ @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["spmm", "normalized_adjacency", "row_normalized_adjacency"]


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse @ dense product, differentiable in the dense operand.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix of shape ``(m, n)``; treated as a constant.
    dense:
        Dense tensor of shape ``(n, d)`` (or ``(n,)``).
    """
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix as the left operand")
    dense = as_tensor(dense)
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        Tensor._accumulate(dense, csr.T @ grad)

    return Tensor._make(np.asarray(out_data), (dense,), backward)


def normalized_adjacency(adjacency: sp.spmatrix, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes (degree zero after optional self-loops) receive zero rows
    rather than NaNs.
    """
    adj = sp.csr_matrix(adjacency, dtype=np.float64)
    if add_self_loops:
        adj = adj + sp.eye(adj.shape[0], format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    d_inv_sqrt = sp.diags(inv_sqrt)
    return (d_inv_sqrt @ adj @ d_inv_sqrt).tocsr()


def row_normalized_adjacency(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Row-stochastic ``D^{-1} A`` — the GraphSAGE mean aggregator operator."""
    adj = sp.csr_matrix(adjacency, dtype=np.float64)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return (sp.diags(inv) @ adj).tocsr()
