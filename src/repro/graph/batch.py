"""Block-diagonal collation of graphs for batched message passing.

A :class:`GraphBatch` packs ``k`` graphs — or ``k`` support-view replicas
of one graph — into a single graph whose adjacency is the block-diagonal
stack of the member adjacencies::

    graphs:   G0 (n0 nodes)   G1 (n1 nodes)   G2 (n2 nodes)

              ┌ A0          ┐      node ids:  [0 .. n0)          -> G0
    A_batch = │     A1      │                 [n0 .. n0+n1)      -> G1
              └         A2  ┘                 [n0+n1 .. n0+n1+n2)-> G2

Because no edges cross blocks, one sparse matmul (or one edge-list
scatter) over ``A_batch`` computes the message passing of every member
graph simultaneously, and the rows of the result are exactly the
concatenation of the per-graph results.  This is what lets the encoder
run one forward per *batch* instead of one per support pair, and the
meta-trainer take one optimiser step per task mini-batch.

The batch duck-types the :class:`~repro.graph.graph.Graph` surface the
GNN stack consumes (``num_nodes``, ``adjacency``, ``directed_edges`` and
the :class:`~repro.graph.graph.OpsCache` protocol), so
:func:`repro.gnn.conv.graph_ops` and every convolution work on it
unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..nn.backend import index_dtype_for, resolve_index_dtype
from .graph import Graph, OpsCache

__all__ = ["GraphBatch", "stack_csr"]


def stack_csr(blocks: Sequence[sp.csr_matrix],
              index_dtype=None) -> sp.csr_matrix:
    """Block-diagonal stack of CSR matrices by raw index arithmetic.

    Equivalent to ``scipy.sparse.block_diag(blocks, format="csr")`` for
    square CSR inputs but skips the COO round-trip and re-validation —
    this runs once per training step, so assembly must cost no more than
    a few array concatenations.

    ``index_dtype`` fixes the result's structure width (default: the
    ambient index policy, int32), widened to int64 only when the stacked
    totals genuinely overflow it.  The block layout is recorded on the
    matrix as ``block_offsets`` — the row-partition hint
    :class:`~repro.nn.backend.ThreadedBackend` aligns its spmm chunks to.
    """
    if not blocks:
        raise ValueError("stack_csr needs at least one block")
    blocks = [b if sp.issparse(b) and b.format == "csr" else sp.csr_matrix(b)
              for b in blocks]
    sizes = np.asarray([b.shape[0] for b in blocks], dtype=np.int64)
    node_offsets = np.concatenate([[0], np.cumsum(sizes)])
    nnz_offsets = np.concatenate(
        [[0], np.cumsum([b.nnz for b in blocks])]).astype(np.int64)
    index_dtype = index_dtype_for(
        int(max(node_offsets[-1], nnz_offsets[-1])), index_dtype)
    data = np.concatenate([b.data for b in blocks])
    # Python-int offsets keep the concatenated arrays at the blocks'
    # own index width (a numpy int64 scalar would upcast int32 blocks).
    indices = np.concatenate(
        [b.indices.astype(index_dtype, copy=False) + int(offset)
         for b, offset in zip(blocks, node_offsets[:-1])])
    indptr = np.concatenate(
        [b.indptr[:-1].astype(index_dtype, copy=False) + int(offset)
         for b, offset in zip(blocks, nnz_offsets[:-1])]
        + [np.asarray([nnz_offsets[-1]], dtype=index_dtype)])
    total = int(node_offsets[-1])
    # The arrays are canonical by construction (sorted indices, no
    # duplicates), so build without scipy's per-instance validation pass.
    stacked = sp.csr_matrix((total, total))
    stacked.data, stacked.indices, stacked.indptr = data, indices, indptr
    stacked.block_offsets = node_offsets
    return stacked


class GraphBatch(OpsCache):
    """``k`` graphs collated into one block-diagonal adjacency.

    Parameters
    ----------
    graphs:
        Member graphs, in batch order.  The same :class:`Graph` instance
        may appear several times (the support-view replica case); blocks
        are laid out in the given order regardless of identity.

    Attributes
    ----------
    sizes:
        ``(k,)`` node counts of the member graphs.
    offsets:
        ``(k + 1,)`` exclusive prefix sums of ``sizes``; block ``i``
        owns global node ids ``offsets[i] .. offsets[i + 1])``.
    node_graph_index:
        ``(total_nodes,)`` member index of every global node — the
        scatter map for per-graph reductions (segment sums, readouts).
    adjacency:
        Block-diagonal CSR adjacency over all ``total_nodes`` nodes.
    """

    def __init__(self, graphs: Sequence[Graph]):
        members = list(graphs)
        if not members:
            raise ValueError("GraphBatch needs at least one graph")
        self.graphs: List[Graph] = members
        # Staged at int64, narrowed to the policy width only when the
        # stacked total actually fits it (index_dtype_for widens).
        sizes = np.asarray([g.num_nodes for g in members], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        index_dtype = index_dtype_for(int(offsets[-1]))
        self.sizes = sizes.astype(index_dtype, copy=False)
        self.offsets = offsets.astype(index_dtype, copy=False)
        self.num_nodes = int(self.offsets[-1])
        self.num_graphs = len(members)
        self.node_graph_index = np.repeat(
            np.arange(self.num_graphs, dtype=index_dtype), self.sizes)
        self._adjacency: Optional[sp.csr_matrix] = None
        self.name = f"batch[{self.num_graphs}]"

    @property
    def adjacency(self) -> sp.csr_matrix:
        """Block-diagonal CSR adjacency, assembled lazily.

        The GNN hot path never touches it (message-passing operators are
        composed from the members' cached operators), so collating a
        batch per training step costs index bookkeeping only.
        """
        if self._adjacency is None:
            self._adjacency = stack_csr([g.adjacency for g in self.graphs])
        return self._adjacency

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(cls, graphs: Sequence[Graph]) -> "GraphBatch":
        """Collate distinct task graphs (one block per graph)."""
        return cls(graphs)

    @classmethod
    def replicate(cls, graph: Graph, count: int) -> "GraphBatch":
        """``count`` blocks of the same graph — one per support view."""
        if count < 1:
            raise ValueError("replica count must be >= 1")
        return cls([graph] * count)

    # ------------------------------------------------------------------
    # Graph protocol (what the GNN stack consumes)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Total undirected edge count across all blocks."""
        return int(sum(g.num_edges for g in self.graphs))

    def directed_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Both orientations of every member edge, in global node ids."""
        sources: List[np.ndarray] = []
        destinations: List[np.ndarray] = []
        for offset, graph in zip(self.offsets[:-1], self.graphs):
            src, dst = graph.directed_edges()
            # Python-int offsets keep the member arrays' index width.
            sources.append(src + int(offset))
            destinations.append(dst + int(offset))
        if not sources:
            empty = np.zeros(0, dtype=resolve_index_dtype())
            return empty, empty
        return np.concatenate(sources), np.concatenate(destinations)

    def degrees(self) -> np.ndarray:
        """Degree of every global node (concatenated member degrees)."""
        return np.diff(self.adjacency.indptr)

    # ------------------------------------------------------------------
    # Scatter / unscatter
    # ------------------------------------------------------------------
    def global_ids(self, graph_index: int,
                   local_nodes: Union[int, np.ndarray]) -> np.ndarray:
        """Map local node ids of member ``graph_index`` into batch ids."""
        if not 0 <= graph_index < self.num_graphs:
            raise IndexError(
                f"graph index {graph_index} out of range for a batch of "
                f"{self.num_graphs}")
        # Staged at int64 so an id beyond the int32 policy range is
        # reported as out of range rather than overflowing the cast.
        local = np.asarray(local_nodes, dtype=np.int64)
        if local.size and (local.min() < 0 or local.max() >= self.sizes[graph_index]):
            raise ValueError(
                f"local node ids out of range for member {graph_index} "
                f"({self.sizes[graph_index]} nodes)")
        return (local.astype(self.offsets.dtype, copy=False)
                + int(self.offsets[graph_index]))

    def block(self, graph_index: int) -> Tuple[int, int]:
        """Global ``(start, stop)`` node-id range of member ``graph_index``."""
        return int(self.offsets[graph_index]), int(self.offsets[graph_index + 1])

    def split_rows(self, stacked) -> List:
        """Unscatter a per-node array/tensor into per-graph row chunks.

        Works on anything sliceable along axis 0 with ``stacked[a:b]``
        (numpy arrays and autograd tensors alike); the slices are views
        into the batched result, in member order.
        """
        if len(stacked) != self.num_nodes:
            raise ValueError(
                f"expected {self.num_nodes} rows to unscatter, got {len(stacked)}")
        return [stacked[start:stop] for start, stop in
                (self.block(i) for i in range(self.num_graphs))]

    def scatter_rows(self, chunks: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-graph row chunks back into batch order
        (the inverse of :meth:`split_rows` for numpy arrays)."""
        if len(chunks) != self.num_graphs:
            raise ValueError(
                f"expected {self.num_graphs} chunks, got {len(chunks)}")
        for chunk, size in zip(chunks, self.sizes):
            if len(chunk) != size:
                raise ValueError("chunk row counts must match member sizes")
        return np.concatenate([np.asarray(c) for c in chunks], axis=0)

    def __len__(self) -> int:
        return self.num_graphs

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.graphs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (f"GraphBatch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
