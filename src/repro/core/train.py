"""CGNP meta-training — Algorithm 1 of the paper.

For each epoch: shuffle the training tasks; for each task, build the
context ``H`` from the support set, compute the BCE loss of every query-set
query's labelled nodes (Eq. 19 restricted to the sampled ground truth),
and take one optimiser step per task.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.loss import bce_with_logits
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor
from ..tasks.task import Task
from .model import CGNP

__all__ = ["MetaTrainConfig", "TrainState", "task_loss", "meta_train"]


@dataclasses.dataclass
class MetaTrainConfig:
    """Training hyper-parameters (paper: Adam, lr 5e-4, 200 epochs)."""

    epochs: int = 200
    learning_rate: float = 5e-4
    weight_decay: float = 0.0
    grad_clip: Optional[float] = 5.0
    patience: Optional[int] = None   # early stopping on validation loss
    log_every: int = 0               # 0 → silent


@dataclasses.dataclass
class TrainState:
    """Outcome of a meta-training run."""

    epoch_losses: List[float]
    best_epoch: int
    stopped_early: bool


def task_loss(model: CGNP, task: Task) -> Tensor:
    """Negative log-likelihood of the task's query set given its support set.

    Implements the inner sums of Eq. 19: for every query in the query set,
    BCE over its sampled positive/negative nodes, with the context built
    from the support set only.
    """
    context = model.context(task)
    total: Optional[Tensor] = None
    for example in task.queries:
        logits = model.query_logits(context, example.query, task.graph)
        nodes, targets = example.label_arrays()
        loss = bce_with_logits(logits.take_rows(nodes), targets, reduction="sum")
        total = loss if total is None else total + loss
    if total is None:
        raise ValueError(f"task {task.name!r} has no query examples to train on")
    # Normalise by the number of supervised scalars so tasks with different
    # query counts weigh comparably in the epoch loss.
    num_labels = sum(1 + e.num_labels for e in task.queries)
    return total * (1.0 / num_labels)


def meta_train(model: CGNP, train_tasks: Sequence[Task],
               config: MetaTrainConfig, rng: np.random.Generator,
               valid_tasks: Optional[Sequence[Task]] = None,
               callback: Optional[Callable[[int, float], None]] = None) -> TrainState:
    """Run Algorithm 1.

    Parameters
    ----------
    model:
        The CGNP meta model (updated in place).
    train_tasks:
        Training task set 𝒟.
    config:
        Optimiser and schedule settings.
    rng:
        Generator for task shuffling.
    valid_tasks:
        Optional validation tasks for early stopping (lowest validation
        loss wins; the best parameters are restored on exit).
    callback:
        Optional ``f(epoch, mean_loss)`` hook (used by the harness for
        logging).
    """
    if not train_tasks:
        raise ValueError("meta_train requires at least one training task")
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    model.train()

    order = np.arange(len(train_tasks))
    epoch_losses: List[float] = []
    best_valid = np.inf
    best_state = None
    best_epoch = 0
    bad_epochs = 0
    stopped_early = False

    for epoch in range(config.epochs):
        rng.shuffle(order)
        losses = []
        for index in order:
            task = train_tasks[int(index)]
            optimizer.zero_grad()
            loss = task_loss(model, task)
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(float(loss.data))
        mean_loss = float(np.mean(losses))
        epoch_losses.append(mean_loss)
        if callback is not None:
            callback(epoch, mean_loss)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            print(f"[meta-train] epoch {epoch + 1}/{config.epochs} "
                  f"loss {mean_loss:.4f}")

        if valid_tasks and config.patience is not None:
            valid_loss = evaluate_loss(model, valid_tasks)
            if valid_loss < best_valid - 1e-6:
                best_valid = valid_loss
                best_state = model.state_dict()
                best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= config.patience:
                    stopped_early = True
                    break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return TrainState(epoch_losses=epoch_losses,
                      best_epoch=best_epoch if best_state is not None
                      else len(epoch_losses) - 1,
                      stopped_early=stopped_early)


def evaluate_loss(model: CGNP, tasks: Sequence[Task]) -> float:
    """Mean task loss without gradient tracking (for early stopping)."""
    from ..nn.tensor import no_grad

    model.eval()
    with no_grad():
        losses = [float(task_loss(model, task).data) for task in tasks]
    model.train()
    return float(np.mean(losses))
