"""Shared test utilities: finite-difference gradient checking and tiny
fixture graphs."""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.graph import Graph
from repro.nn import Tensor


def numeric_gradient(func: Callable[[np.ndarray], float], x: np.ndarray,
                     epsilon: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        f_plus = func(x)
        flat[i] = original - epsilon
        f_minus = func(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * epsilon)
    return grad


def gradcheck(op: Callable[[Tensor], Tensor], x: np.ndarray,
              atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert that autograd matches finite differences for ``op``.

    ``op`` maps a tensor to a tensor of any shape; the check backpropagates
    the sum of the output (a scalar), which exercises the full VJP.
    """
    x = np.asarray(x, dtype=np.float64)

    def scalar(value: np.ndarray) -> float:
        return float(op(Tensor(value)).data.sum())

    tensor = Tensor(x.copy(), requires_grad=True)
    output = op(tensor)
    output.backward(np.ones_like(output.data))
    analytic = tensor.grad
    numeric = numeric_gradient(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def gradcheck_multi(op: Callable[..., Tensor], *arrays: np.ndarray,
                    atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Gradient-check an op of several tensor arguments, one at a time."""
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    for index in range(len(arrays)):
        def single(value: np.ndarray, _index: int = index) -> Tensor:
            args = [Tensor(a) for a in arrays]
            args[_index] = value if isinstance(value, Tensor) else Tensor(value)
            return op(*args)

        gradcheck(single, arrays[index], atol=atol, rtol=rtol)


def triangle_graph() -> Graph:
    """K3 — the smallest graph with a triangle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def two_cliques_graph(clique_size: int = 5) -> Graph:
    """Two cliques joined by a single bridge edge; communities = cliques."""
    k = clique_size
    edges = []
    for block in (0, 1):
        offset = block * k
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((offset + i, offset + j))
    edges.append((k - 1, k))  # bridge
    communities = [list(range(k)), list(range(k, 2 * k))]
    return Graph(2 * k, edges, communities=communities, name="two-cliques")


def path_graph(n: int = 6) -> Graph:
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=f"path{n}")
