"""``repro.eval`` — metrics, the method evaluator, the persistent results
store, experiment harness and table reporting."""

from .evaluator import (
    EvaluationResult,
    TaskOutcome,
    evaluate_method,
    evaluate_methods,
)
from .experiments import (
    ALL_METHOD_NAMES,
    CORE_METHOD_NAMES,
    PAPER_REFERENCE_F1,
    PROFILES,
    ExperimentProfile,
    build_method,
    build_methods,
    method_spec,
    run_ablation,
    run_effectiveness,
    run_groundtruth_sweep,
    run_scalability,
)
from .metrics import Metrics, binary_metrics, community_metrics, mean_metrics
from .plots import bar_chart, line_chart
from .reporting import (
    format_generic_table,
    format_metric_table,
    format_time_table,
    highlight_best_f1,
)
from .significance import PairedComparison, compare_results, paired_bootstrap
from .store import (
    STORE_SCHEMA_VERSION,
    ResultsStore,
    RunRecord,
    run_provenance,
)

__all__ = [
    "Metrics",
    "binary_metrics",
    "community_metrics",
    "mean_metrics",
    "EvaluationResult",
    "TaskOutcome",
    "evaluate_method",
    "evaluate_methods",
    "ResultsStore",
    "RunRecord",
    "run_provenance",
    "STORE_SCHEMA_VERSION",
    "ExperimentProfile",
    "PROFILES",
    "build_method",
    "build_methods",
    "method_spec",
    "ALL_METHOD_NAMES",
    "CORE_METHOD_NAMES",
    "run_effectiveness",
    "run_ablation",
    "run_scalability",
    "run_groundtruth_sweep",
    "PAPER_REFERENCE_F1",
    "format_metric_table",
    "format_time_table",
    "format_generic_table",
    "highlight_best_f1",
    "bar_chart",
    "line_chart",
    "PairedComparison",
    "paired_bootstrap",
    "compare_results",
]
