"""Tests for weight initialisation and miscellaneous nn edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, init
from repro.utils import make_rng

from helpers import gradcheck


class TestInitializers:
    def test_glorot_bounds(self, rng):
        weights = init.glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit)
        assert weights.shape == (100, 50)

    def test_glorot_1d(self, rng):
        weights = init.glorot_uniform((64,), rng)
        limit = np.sqrt(6.0 / 128)
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_conv_shape_fans(self, rng):
        # 4-D shapes use receptive-field fans.
        weights = init.glorot_uniform((8, 4, 3, 3), rng)
        limit = np.sqrt(6.0 / (4 * 9 + 8 * 9))
        assert np.all(np.abs(weights) <= limit)

    def test_kaiming_bounds(self, rng):
        weights = init.kaiming_uniform((200, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(weights) <= limit)

    def test_uniform_range(self, rng):
        weights = init.uniform((50,), rng, low=-0.1, high=0.1)
        assert np.all((weights >= -0.1) & (weights <= 0.1))

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros_init((3, 3)), np.zeros((3, 3)))

    def test_deterministic_under_seed(self):
        a = init.glorot_uniform((10, 10), make_rng(5))
        b = init.glorot_uniform((10, 10), make_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_nonzero_spread(self, rng):
        weights = init.glorot_uniform((50, 50), rng)
        assert weights.std() > 0.01


class TestCompositeGradients:
    """Gradients through compositions that mirror real model fragments."""

    def setup_method(self):
        self.rng = np.random.default_rng(8)

    def test_attention_fragment(self):
        # softmax(QK^T/sqrt(d)) V with shared input — the self-attention ⊕.
        from repro.nn import functional as F

        x = self.rng.normal(size=(4, 3))

        def fragment(t):
            scores = t.matmul(t.T) * (1.0 / np.sqrt(3))
            return F.softmax(scores, axis=-1).matmul(t)

        gradcheck(fragment, x)

    def test_inner_product_decoder_fragment(self):
        x = self.rng.normal(size=(5, 3))

        def fragment(t):
            query = t.take_rows(np.asarray([2])).reshape(-1)
            return t.matmul(query).sigmoid()

        gradcheck(fragment, x)

    def test_prototype_distance_fragment(self):
        # GPN's distance-to-prototype classifier.
        x = self.rng.normal(size=(6, 4))

        def fragment(t):
            c_pos = t.take_rows(np.asarray([0, 1])).mean(axis=0)
            c_neg = t.take_rows(np.asarray([4, 5])).mean(axis=0)
            d_pos = ((t - c_pos.reshape(1, -1)) ** 2).sum(axis=1)
            d_neg = ((t - c_neg.reshape(1, -1)) ** 2).sum(axis=1)
            return (d_neg - d_pos).sigmoid()

        gradcheck(fragment, x)

    def test_deep_chain_no_graph_corruption(self):
        # Long chains must backprop exactly once per node.
        x = Tensor(np.ones(3), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 1.01 ** 50), rtol=1e-10)

    def test_grad_not_tracked_in_eval_path(self):
        from repro.nn import no_grad

        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sigmoid().sum()
        assert y._backward is None
        assert not y.requires_grad
