"""CGNP wrapped in the unified :class:`CommunitySearchMethod` interface.

The three paper variants differ only in the decoder:

* ``CGNP-IP``  — inner-product decoder;
* ``CGNP-MLP`` — MLP decoder;
* ``CGNP-GNN`` — GNN decoder.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.infer import meta_test_task
from ..core.model import CGNP, CGNPConfig
from ..core.train import MetaTrainConfig, meta_train
from ..tasks.task import Task
from ..utils import derive_rng
from .base import CommunitySearchMethod, QueryPrediction
from .common import feature_dim_of_tasks

__all__ = ["CGNPMethod", "make_cgnp_variant"]


class CGNPMethod(CommunitySearchMethod):
    """Meta-trained CGNP behind the common evaluation interface."""

    trains_meta = True

    def __init__(self, model_config: Optional[CGNPConfig] = None,
                 train_config: Optional[MetaTrainConfig] = None,
                 seed: int = 0, name: Optional[str] = None):
        self.model_config = model_config or CGNPConfig()
        self.train_config = train_config or MetaTrainConfig()
        self._rng = np.random.default_rng(seed)
        self._model: Optional[CGNP] = None
        self.name = name or f"CGNP-{self.model_config.decoder.upper()}"

    @property
    def model(self) -> CGNP:
        if self._model is None:
            raise RuntimeError(f"{self.name}: model not trained yet")
        return self._model

    def meta_fit(self, train_tasks: Sequence[Task],
                 valid_tasks: Optional[Sequence[Task]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or derive_rng(self._rng)
        in_dim = feature_dim_of_tasks(train_tasks)
        self._model = CGNP(in_dim, self.model_config, rng)
        meta_train(self._model, train_tasks, self.train_config, rng,
                   valid_tasks=valid_tasks)

    def predict_task(self, task: Task) -> List[QueryPrediction]:
        return meta_test_task(self.model, task)


def make_cgnp_variant(decoder: str, seed: int = 0,
                      conv: str = "gat", aggregator: str = "sum",
                      epochs: int = 200, hidden_dim: int = 128,
                      num_layers: int = 3,
                      learning_rate: float = 5e-4) -> CGNPMethod:
    """Convenience factory for the paper's three variants and ablations."""
    model_config = CGNPConfig(hidden_dim=hidden_dim, num_layers=num_layers,
                              conv=conv, aggregator=aggregator, decoder=decoder)
    train_config = MetaTrainConfig(epochs=epochs, learning_rate=learning_rate)
    return CGNPMethod(model_config, train_config, seed=seed)


# ----------------------------------------------------------------------
# Registry wiring
# ----------------------------------------------------------------------
from ..api.registry import MethodSpec, register_method  # noqa: E402


def _variant_factory(decoder: str):
    def build(spec: MethodSpec) -> CGNPMethod:
        model_config = CGNPConfig(hidden_dim=spec.hidden_dim,
                                  num_layers=spec.num_layers, conv=spec.conv,
                                  aggregator=spec.aggregator, decoder=decoder)
        return CGNPMethod(model_config, MetaTrainConfig(epochs=spec.cgnp_epochs),
                          seed=spec.seed)
    return build


for _rank, _decoder in ((20, "ip"), (21, "mlp"), (22, "gnn")):
    register_method(f"CGNP-{_decoder.upper()}", _variant_factory(_decoder),
                    rank=_rank)
