"""K-layer GNN encoders.

Two encoder flavours back the whole reproduction:

* :class:`GNNEncoder` — the plain stack used by CGNP's φ and ρ-GNN: takes a
  node feature matrix and a graph, returns ``(n, hidden)`` embeddings.
* :class:`GNNNodeClassifier` — encoder plus a scalar output head and
  sigmoid, the "simple GNN approach" of section IV that all naive
  baselines (Supervised, FeatTrans, MAML, Reptile, ICS-GNN, AQD-GNN)
  build on: input features are ``[I_q(v) ‖ A(v) ‖ structural]`` and the
  output is the membership probability of every node w.r.t. the query.

Paper defaults: 3 layers, 128 hidden units, dropout 0.2, GAT convolution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.backend import fused_inference_enabled, resolve_index_dtype
from ..nn.layers import Dropout
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor, is_grad_enabled
from .conv import CONV_TYPES, GraphLike, graph_ops

__all__ = ["GNNEncoder", "GNNNodeClassifier", "make_query_features",
           "make_support_features", "DEFAULTS"]

DEFAULTS = {"num_layers": 3, "hidden_dim": 128, "dropout": 0.2, "conv": "gat"}


def make_query_features(features: np.ndarray, query: int,
                        positives: Optional[np.ndarray] = None) -> np.ndarray:
    """Prefix the query/ground-truth indicator channel to node features.

    Implements Eq. 13: ``h⁰_v = [I_l(v) ‖ A(v)]`` where the indicator is 1
    for the query node and (when given) its known positive samples.
    """
    indicator = np.zeros((features.shape[0], 1), dtype=features.dtype)
    indicator[int(query), 0] = 1.0
    if positives is not None and len(positives) > 0:
        indicator[np.asarray(positives, dtype=resolve_index_dtype()), 0] = 1.0
    return np.concatenate([indicator, features], axis=1)


def make_support_features(features: np.ndarray, examples: Sequence,
                          mark_positives: bool = True) -> np.ndarray:
    """Stacked indicator-prefixed inputs for ``k`` support views of one graph.

    Returns a ``(k * n, 1 + d)`` matrix: row block ``i`` is
    :func:`make_query_features` for ``examples[i]``, matching the node
    layout of ``GraphBatch.replicate(graph, k)`` — so one batched
    encoder forward covers every support pair at once (Eq. 13 for the
    whole support set).
    """
    if not examples:
        raise ValueError("make_support_features needs at least one example")
    n = features.shape[0]
    k = len(examples)
    indicator = np.zeros((k * n, 1), dtype=features.dtype)
    for i, example in enumerate(examples):
        base = i * n
        indicator[base + int(example.query), 0] = 1.0
        positives = example.positives if mark_positives else None
        if positives is not None and len(positives) > 0:
            indicator[base + np.asarray(positives, dtype=resolve_index_dtype()), 0] = 1.0
    return np.concatenate([indicator, np.tile(features, (k, 1))], axis=1)


class GNNEncoder(Module):
    """Stack of graph convolutions with ReLU/ELU activations and dropout.

    Parameters
    ----------
    in_dim:
        Input feature dimensionality (including the indicator channel when
        the caller prepends one).
    hidden_dim:
        Width of every layer (paper: 128).
    num_layers:
        Number of convolutions (paper: 3).
    conv:
        One of ``"gcn"``, ``"gat"``, ``"sage"``.
    dropout:
        Dropout probability between layers (paper: 0.2).
    rng:
        Generator for weight init and dropout masks.
    activate_final:
        Whether the last layer output is passed through the activation
        (CGNP leaves the final embedding linear).
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int,
                 conv: str, dropout: float, rng: np.random.Generator,
                 activate_final: bool = False, num_heads: int = 1):
        super().__init__()
        if num_layers < 1:
            raise ValueError("encoder needs at least one layer")
        conv = conv.lower()
        if conv not in CONV_TYPES:
            raise ValueError(f"unknown conv {conv!r}; choose from {sorted(CONV_TYPES)}")
        self.conv_name = conv
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.activate_final = activate_final
        conv_cls = CONV_TYPES[conv]
        layers: List[Module] = []
        for index in range(num_layers):
            d_in = in_dim if index == 0 else hidden_dim
            if conv == "gat":
                layers.append(conv_cls(d_in, hidden_dim, rng, num_heads=num_heads))
            else:
                layers.append(conv_cls(d_in, hidden_dim, rng))
        self.convs = ModuleList(layers)
        self.dropouts = ModuleList([Dropout(dropout, rng) for _ in range(num_layers)])

    def _activation(self, x: Tensor) -> Tensor:
        # ELU after attention layers (GAT convention), ReLU otherwise.
        return F.elu(x) if self.conv_name == "gat" else F.relu(x)

    def _fused_active(self) -> bool:
        """Whether the fused inference kernels may dispatch right now.

        All three conditions are required: the policy switch is on
        (``REPRO_FUSED`` / ``fused_inference``), the module is in eval
        mode (dropout is identity, so skipping it is exact), and no
        gradient tape is recording (the fused kernels have no VJPs).
        Training numerics can therefore never change under this flag.
        """
        return (fused_inference_enabled() and not self.training
                and not is_grad_enabled())

    def forward(self, features: Tensor, graph: GraphLike) -> Tensor:
        # Operators are fetched at the activations' own width, so a
        # float32 forward message-passes over float32 adjacencies.
        ops = graph_ops(graph, features.dtype)
        return self._run_layers(features, ops, self.num_layers)

    def encode_hidden(self, features: Tensor, graph: GraphLike):
        """All but the final convolution, plus the graph operators.

        Returns ``(hidden, ops)``.  The fused serving path of
        :meth:`repro.core.model.CGNP.context_concat` uses this to stop
        one layer short, aggregate the (cheaper) penultimate activations
        across support replicas, and fold the final layer with the ⊕
        reduction.
        """
        ops = graph_ops(graph, features.dtype)
        return self._run_layers(features, ops, self.num_layers - 1), ops

    def _run_layers(self, x: Tensor, ops, count: int) -> Tensor:
        """The first ``count`` convolutions, fused when inference allows.

        The fused path hands each layer its activation name so bias +
        activation ride inside the layer kernel; dropout is skipped
        outright (identity in eval mode).  The unfused path is the exact
        pre-existing training forward.
        """
        last = self.num_layers - 1
        fused = self._fused_active()
        act_name = "elu" if self.conv_name == "gat" else "relu"
        for index in range(count):
            conv = self.convs[index]
            wants_act = index < last or self.activate_final
            if fused:
                x = conv.fused_forward(x, ops,
                                       act_name if wants_act else None)
            else:
                x = conv(x, ops)
                if wants_act:
                    x = self._activation(x)
                    x = self.dropouts[index](x)
        return x


class GNNNodeClassifier(Module):
    """Query-conditioned binary node classifier (section IV's base GNN).

    ``forward`` returns per-node logits; ``predict_proba`` applies the
    sigmoid.  The final hidden layer maps to a single unit, as in the
    paper ("the 1-dimensional node representation h^K is activated by a
    sigmoid").
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int,
                 conv: str, dropout: float, rng: np.random.Generator,
                 num_heads: int = 1):
        super().__init__()
        self.encoder = GNNEncoder(in_dim, hidden_dim, max(num_layers - 1, 1),
                                  conv, dropout, rng,
                                  activate_final=True, num_heads=num_heads)
        conv_cls = CONV_TYPES[conv.lower()]
        if conv.lower() == "gat":
            self.head = conv_cls(hidden_dim, 1, rng, num_heads=num_heads)
        else:
            self.head = conv_cls(hidden_dim, 1, rng)

    def forward(self, features: Tensor, graph: GraphLike) -> Tensor:
        hidden = self.encoder(features, graph)
        logits = self.head(hidden, graph_ops(graph, hidden.dtype))
        return logits.reshape(-1)

    def predict_proba(self, features: Tensor, graph: GraphLike) -> np.ndarray:
        """Membership probability of every node (no autograd)."""
        from ..nn.tensor import no_grad

        with no_grad():
            logits = self.forward(features, graph)
        return logits.sigmoid().data
