"""The remaining classic community models of the paper's introduction.

Besides k-core (ACQ) and k-truss (CTC/ATC), the paper's section I/II cite
two further pre-defined community patterns that CS algorithms build on:

* **k-clique communities** [8], [9] — clique-percolation: two k-cliques
  are adjacent when they share k-1 nodes; a community is a connected
  union of adjacent k-cliques;
* **k-edge-connected components** [10], [11] — maximal subgraphs that
  remain connected after removing any k-1 edges;
* the **global/local k-core search** of Sozio & Gionis [4] ("cocktail
  party"): the connected subgraph containing the queries that maximises
  the minimum degree.

They are provided both as reusable primitives and behind the unified
:class:`CommunitySearchMethod` interface, so the evaluation harness can
compare them against the learned approaches exactly like CTC/ACQ/ATC —
an extension beyond the paper's three algorithmic baselines.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph import Graph
from ..tasks.task import Task
from ..baselines.base import CommunitySearchMethod, QueryPrediction

__all__ = [
    "enumerate_k_cliques",
    "k_clique_communities",
    "k_edge_connected_components",
    "greedy_cocktail_party",
    "KCliqueCommunitySearch",
    "CocktailPartySearch",
]


# ----------------------------------------------------------------------
# k-clique percolation
# ----------------------------------------------------------------------
def enumerate_k_cliques(graph: Graph, k: int) -> List[FrozenSet[int]]:
    """All k-cliques of the graph (Bron-Kerbosch style pivot expansion).

    Exponential in the worst case; intended for the ≤ few-hundred-node
    task graphs of the CS pipeline.
    """
    if k < 2:
        raise ValueError("k-clique requires k >= 2")
    adjacency = {v: set(int(u) for u in graph.neighbors(v))
                 for v in range(graph.num_nodes)}
    cliques: List[FrozenSet[int]] = []

    def extend(clique: List[int], candidates: Set[int]) -> None:
        if len(clique) == k:
            cliques.append(frozenset(clique))
            return
        # Prune: not enough candidates left to reach size k.
        if len(clique) + len(candidates) < k:
            return
        for v in sorted(candidates):
            extend(clique + [v], {u for u in candidates
                                  if u > v and u in adjacency[v]})

    for v in range(graph.num_nodes):
        extend([v], {u for u in adjacency[v] if u > v})
    return cliques


def k_clique_communities(graph: Graph, k: int) -> List[Set[int]]:
    """Clique-percolation communities (Palla et al.), largest first.

    Two k-cliques are adjacent iff they share k-1 nodes; a community is
    the node union of a connected component of the clique-adjacency graph.
    """
    cliques = enumerate_k_cliques(graph, k)
    if not cliques:
        return []
    # Index cliques by their (k-1)-subsets to find adjacency.
    by_subset: Dict[FrozenSet[int], List[int]] = collections.defaultdict(list)
    for index, clique in enumerate(cliques):
        for node in clique:
            by_subset[clique - {node}].append(index)

    parent = list(range(len(cliques)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for indices in by_subset.values():
        for a, b in zip(indices, indices[1:]):
            union(a, b)

    groups: Dict[int, Set[int]] = collections.defaultdict(set)
    for index, clique in enumerate(cliques):
        groups[find(index)] |= set(clique)
    return sorted(groups.values(), key=len, reverse=True)


# ----------------------------------------------------------------------
# k-edge-connected components
# ----------------------------------------------------------------------
def _min_cut_value(graph: Graph, nodes: List[int], source: int, sink: int) -> int:
    """Max-flow / min-cut between two nodes of the induced subgraph
    (unit capacities, BFS augmenting paths — Edmonds-Karp)."""
    local = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    capacity = [collections.defaultdict(int) for _ in range(n)]
    for u in nodes:
        for w in graph.neighbors(int(u)):
            w = int(w)
            if w in local:
                capacity[local[int(u)]][local[w]] = 1
    s, t = local[source], local[sink]
    flow = 0
    while True:
        parent_edge = [-1] * n
        parent_edge[s] = s
        queue = collections.deque([s])
        while queue and parent_edge[t] == -1:
            v = queue.popleft()
            for u, cap in capacity[v].items():
                if cap > 0 and parent_edge[u] == -1:
                    parent_edge[u] = v
                    queue.append(u)
        if parent_edge[t] == -1:
            break
        # Unit capacities: augment by 1 along the path.
        v = t
        while v != s:
            u = parent_edge[v]
            capacity[u][v] -= 1
            capacity[v][u] += 1
            v = u
        flow += 1
    return flow


def k_edge_connected_components(graph: Graph, k: int) -> List[Set[int]]:
    """Maximal k-edge-connected components, largest first.

    Recursive cut-based decomposition: find a global min cut of a
    component; if its value ≥ k the component qualifies, otherwise split
    along the cut and recurse.  Suitable for task-graph sizes.
    """
    if k < 1:
        raise ValueError("k must be >= 1")

    def components_of(nodes: Set[int]) -> List[Set[int]]:
        # Connected components within `nodes`.
        remaining = set(nodes)
        out = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            queue = collections.deque([start])
            while queue:
                v = queue.popleft()
                for u in graph.neighbors(v):
                    u = int(u)
                    if u in remaining and u not in seen:
                        seen.add(u)
                        queue.append(u)
            out.append(seen)
            remaining -= seen
        return out

    def min_degree_cut(nodes: List[int]) -> Tuple[int, Optional[Tuple[int, int]]]:
        """Approximate global min cut: min over s-t cuts from a fixed
        source to every other node (exact for unit-capacity undirected
        graphs by Menger, since some s is on the smaller side)."""
        source = nodes[0]
        best = None
        best_pair = None
        for sink in nodes[1:]:
            value = _min_cut_value(graph, nodes, source, sink)
            if best is None or value < best:
                best, best_pair = value, (source, sink)
        return (best if best is not None else 0), best_pair

    result: List[Set[int]] = []
    stack = components_of(set(range(graph.num_nodes)))
    while stack:
        component = stack.pop()
        if len(component) == 1:
            if k <= 0:
                result.append(component)
            continue
        nodes = sorted(component)
        cut_value, pair = min_degree_cut(nodes)
        if cut_value >= k:
            result.append(component)
            continue
        if pair is None:
            continue
        # Split: remove the min-cut edges by separating the reachable set
        # in the residual graph; approximate by removing the sink side.
        source, sink = pair
        reachable = _residual_reachable(graph, nodes, source, sink)
        side_a = reachable & component
        side_b = component - reachable
        if not side_a or not side_b:
            continue
        stack.extend(components_of(side_a))
        stack.extend(components_of(side_b))
    return sorted(result, key=len, reverse=True)


def _residual_reachable(graph: Graph, nodes: List[int], source: int,
                        sink: int) -> Set[int]:
    """Nodes on the source side of a min s-t cut (recompute flow, then BFS
    the residual network)."""
    local = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    capacity = [collections.defaultdict(int) for _ in range(n)]
    for u in nodes:
        for w in graph.neighbors(int(u)):
            w = int(w)
            if w in local:
                capacity[local[int(u)]][local[w]] = 1
    s, t = local[source], local[sink]
    while True:
        parent_edge = [-1] * n
        parent_edge[s] = s
        queue = collections.deque([s])
        while queue and parent_edge[t] == -1:
            v = queue.popleft()
            for u, cap in capacity[v].items():
                if cap > 0 and parent_edge[u] == -1:
                    parent_edge[u] = v
                    queue.append(u)
        if parent_edge[t] == -1:
            break
        v = t
        while v != s:
            u = parent_edge[v]
            capacity[u][v] -= 1
            capacity[v][u] += 1
            v = u
    seen = {s}
    queue = collections.deque([s])
    while queue:
        v = queue.popleft()
        for u, cap in capacity[v].items():
            if cap > 0 and u not in seen:
                seen.add(u)
                queue.append(u)
    return {nodes[i] for i in seen}


# ----------------------------------------------------------------------
# Sozio-Gionis greedy ("cocktail party")
# ----------------------------------------------------------------------
def greedy_cocktail_party(graph: Graph, query_nodes: Sequence[int],
                          max_size: Optional[int] = None) -> Set[int]:
    """Global k-core search of Sozio & Gionis (SIGKDD 2010).

    Greedily peel the minimum-degree node (never a query node) while the
    queries stay connected; return the intermediate subgraph whose minimum
    degree was maximal.  ``max_size`` optionally upper-bounds the returned
    community by continuing the peel until the size constraint holds.
    """
    queries = {int(q) for q in query_nodes}
    if not queries:
        raise ValueError("query set must not be empty")
    alive = set(range(graph.num_nodes))
    degree = {v: len(graph.neighbors(v)) for v in alive}

    best_nodes: Set[int] = set(alive)
    best_min_degree = -1

    def queries_connected(nodes: Set[int]) -> bool:
        start = next(iter(queries))
        seen = {start}
        queue = collections.deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                u = int(u)
                if u in nodes and u not in seen:
                    seen.add(u)
                    queue.append(u)
        return queries <= seen

    while len(alive) > len(queries):
        candidates = [v for v in alive if v not in queries]
        if not candidates:
            break
        victim = min(candidates, key=lambda v: degree[v])
        current_min = min(degree[v] for v in alive)
        if queries_connected(alive):
            size_ok = max_size is None or len(alive) <= max_size
            if current_min > best_min_degree and size_ok:
                best_min_degree = current_min
                best_nodes = set(alive)
        trial = alive - {victim}
        if not queries_connected(trial):
            break
        alive = trial
        for u in graph.neighbors(victim):
            u = int(u)
            if u in degree:
                degree[u] -= 1
        degree.pop(victim, None)

    if queries_connected(alive) and (max_size is None or len(alive) <= max_size):
        current_min = min(degree[v] for v in alive) if alive else 0
        if current_min > best_min_degree:
            best_nodes = set(alive)
    return best_nodes


# ----------------------------------------------------------------------
# Unified-interface wrappers
# ----------------------------------------------------------------------
@dataclasses.dataclass
class KCliqueConfig:
    k: int = 3


class KCliqueCommunitySearch(CommunitySearchMethod):
    """k-clique percolation behind the evaluation interface: the answer
    for a query is the percolation community containing it (or the
    singleton when none does)."""

    name = "k-Clique"
    trains_meta = False

    def __init__(self, config: Optional[KCliqueConfig] = None):
        self.config = config or KCliqueConfig()

    def meta_fit(self, train_tasks, valid_tasks=None, rng=None) -> None:
        """Graph algorithm — nothing to train."""

    def predict_task(self, task: Task) -> List[QueryPrediction]:
        communities = k_clique_communities(task.graph, self.config.k)
        predictions = []
        for example in task.queries:
            members: Set[int] = {example.query}
            for community in communities:
                if example.query in community:
                    members = set(community)
                    break
            mask = np.zeros(task.graph.num_nodes, dtype=bool)
            mask[sorted(members)] = True
            predictions.append(QueryPrediction(
                query=example.query, probabilities=mask.astype(np.float64),
                members=np.flatnonzero(mask), ground_truth=example.membership))
        return predictions


@dataclasses.dataclass
class CocktailPartyConfig:
    max_size: Optional[int] = 60


class CocktailPartySearch(CommunitySearchMethod):
    """Sozio-Gionis greedy minimum-degree maximisation."""

    name = "CocktailParty"
    trains_meta = False

    def __init__(self, config: Optional[CocktailPartyConfig] = None):
        self.config = config or CocktailPartyConfig()

    def meta_fit(self, train_tasks, valid_tasks=None, rng=None) -> None:
        """Graph algorithm — nothing to train."""

    def predict_task(self, task: Task) -> List[QueryPrediction]:
        predictions = []
        for example in task.queries:
            members = greedy_cocktail_party(task.graph, [example.query],
                                            max_size=self.config.max_size)
            mask = np.zeros(task.graph.num_nodes, dtype=bool)
            mask[sorted(members)] = True
            mask[example.query] = True
            predictions.append(QueryPrediction(
                query=example.query, probabilities=mask.astype(np.float64),
                members=np.flatnonzero(mask), ground_truth=example.membership))
        return predictions
