"""Shared utilities: seeded RNG streams and timing."""

from .rng import derive_rng, make_rng, spawn_rngs
from .timing import StopwatchRegistry, Timer

__all__ = ["make_rng", "spawn_rngs", "derive_rng", "Timer", "StopwatchRegistry"]
