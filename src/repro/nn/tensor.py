"""Reverse-mode automatic differentiation over numpy arrays.

This module is the numerical core of the repository: a small, exact,
tape-based autograd engine in the spirit of PyTorch's eager autograd.  Every
learned model in the reproduction (CGNP and all learned baselines) trains
through :class:`Tensor`.

Design notes
------------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (created in the ambient
  :mod:`~repro.nn.backend` precision-policy dtype — ``float64`` by
  default, for numerically-tight gradient checks) plus an optional
  gradient and a closure that propagates an upstream gradient to its
  parents.  Dense matmuls dispatch through the active
  :class:`~repro.nn.backend.ArrayBackend`.
* ``backward()`` runs a topological sort of the recorded graph and applies
  each node's vector-Jacobian product exactly once.
* Broadcasting in forward ops is undone in backward by
  :func:`_unbroadcast`, so gradients always match the parent's shape.
* A module-level switch (:func:`no_grad`) disables taping, which the
  inference paths use to avoid building graphs.

The op surface is intentionally small but complete for graph neural
networks: arithmetic with broadcasting, (batched) matmul, reductions,
row gathering / fancy indexing, elementwise nonlinearities, and shape ops.
Sparse message passing lives in :mod:`repro.nn.sparse`; the remaining
functional ops in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import as_index_array, get_backend, resolve_dtype

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "zeros",
    "ones",
    "full",
]

Number = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Number, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping.

    Inside the block, newly created tensors never require gradients and no
    backward closures are recorded, mirroring ``torch.no_grad``.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for backward."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape``.

    Numpy broadcasting can expand a parent operand along new leading axes or
    along axes of size one; the VJP must sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away broadcasted leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original operand.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.  Floating arrays keep their
        dtype; integers and Python scalars are promoted to the ambient
        :func:`~repro.nn.backend.resolve_dtype` policy dtype.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    dtype:
        Explicit element dtype.  When given, the data is cast to it
        regardless of the input dtype — the entry-point cast model code
        uses to pin features to the model's own precision.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = "",
                 dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if dtype is not None:
            target = resolve_dtype(dtype)
            if array.dtype != target:
                array = array.astype(target)
        elif not np.issubdtype(array.dtype, np.floating):
            array = array.astype(resolve_dtype())
        elif not isinstance(data, np.ndarray):
            # Python scalars/lists adopt the policy dtype (np.asarray
            # makes them float64 regardless); only explicit ndarrays keep
            # their own width, so e.g. the `loss * (1.0 / n)` scaling in
            # a float32 forward never upcasts the graph to float64.
            target = resolve_dtype()
            if array.dtype != target:
                array = array.astype(target)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy, detached from the graph)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable element-width cast; gradients cast back."""
        target = resolve_dtype(dtype)
        if self.data.dtype == target:
            return self
        out_data = self.data.astype(target)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data and the same ``requires_grad``."""
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a non-leaf tensor, recording the tape if grad is enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def _accumulate(tensor: "Tensor", grad: np.ndarray) -> None:
        """Add ``grad`` into ``tensor.grad`` after un-broadcasting."""
        if not tensor.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad), tensor.data.shape)
        if tensor.grad is None:
            tensor.grad = grad.copy()
        else:
            tensor.grad = tensor.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones, which is the usual choice
            for scalar losses.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _operand(self, other: TensorLike) -> "Tensor":
        """Coerce the other operand of a binary op.

        Python scalars/lists adopt THIS tensor's dtype (mirroring numpy's
        value-based scalar promotion) rather than the ambient policy, so
        ``x + 1e-16`` on a float32 ``x`` stays float32 even when the
        ambient default is float64 — the case of a float32-serving model
        running inside a float64 process.
        """
        if isinstance(other, Tensor):
            return other
        if isinstance(other, np.ndarray):
            return Tensor(other)
        return Tensor(other, dtype=self.data.dtype)

    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad)
            Tensor._accumulate(other, grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad)
            Tensor._accumulate(other, -grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._operand(other).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * other.data)
            Tensor._accumulate(other, grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._operand(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad / other.data)
            Tensor._accumulate(other, -grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._operand(other).__truediv__(self)

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: TensorLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: TensorLike) -> "Tensor":
        """Matrix product supporting 1-D, 2-D and batched (>2-D) operands.

        Forward and both VJPs dispatch through the active
        :class:`~repro.nn.backend.ArrayBackend`.
        """
        other = as_tensor(other)
        xp = get_backend()
        out_data = xp.matmul(self.data, other.data)
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            # Each operand's VJP can be a large matmul of its own, so skip
            # it outright when that operand does not require grad (e.g. the
            # constant input-feature matrix of a first GNN layer).
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                # dot product: grad is scalar
                if a.requires_grad:
                    Tensor._accumulate(a, grad * b_data)
                if b.requires_grad:
                    Tensor._accumulate(b, grad * a_data)
                return
            if a_data.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                if a.requires_grad:
                    ga = xp.matmul(b_data, np.expand_dims(grad, -1)).squeeze(-1)
                    Tensor._accumulate(a, ga)
                if b.requires_grad:
                    gb = np.expand_dims(a_data, -1) * np.expand_dims(grad, -2)
                    Tensor._accumulate(b, gb)
                return
            if b_data.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                if a.requires_grad:
                    ga = np.expand_dims(grad, -1) * b_data
                    Tensor._accumulate(a, ga)
                if b.requires_grad:
                    gb = xp.matmul(np.swapaxes(a_data, -1, -2),
                                   np.expand_dims(grad, -1))
                    Tensor._accumulate(b, gb.squeeze(-1))
                return
            if a.requires_grad:
                Tensor._accumulate(a, xp.matmul(grad, np.swapaxes(b_data, -1, -2)))
            if b.requires_grad:
                Tensor._accumulate(b, xp.matmul(np.swapaxes(a_data, -1, -2), grad))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            Tensor._accumulate(self, np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; ties split gradient evenly among the argmaxes."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            mask_sum = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            Tensor._accumulate(self, g * mask / mask_sum)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise transcendental
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def sigmoid(self) -> "Tensor":
        # Numerically-stable logistic: never exponentiates a positive number.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                            np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            Tensor._accumulate(self, grad * inside)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis=axis)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        """Differentiable indexing (slices, integer arrays, masks)."""
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full_grad = np.zeros_like(self.data)
            np.add.at(full_grad, index, grad)
            Tensor._accumulate(self, full_grad)

        return Tensor._make(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows along axis 0 (repeated indices are supported).

        Forward (gather) and backward (scatter-add of the upstream
        gradient) dispatch through the active
        :class:`~repro.nn.backend.ArrayBackend`.
        """
        indices = as_index_array(indices)
        xp = get_backend()
        out_data = xp.gather_rows(self.data, indices)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(
                self, xp.scatter_add_rows(grad, indices, self.data.shape[0]))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(get_backend().zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(get_backend().ones(shape), requires_grad=requires_grad)


def full(shape: Iterable[int], value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(get_backend().full(tuple(shape), value),
                  requires_grad=requires_grad)
