"""``repro.gnn`` — graph convolutions and K-layer encoders."""

from .conv import (CONV_TYPES, GATConv, GCNConv, GraphLike, GraphOps,
                   GraphShardOps, SAGEConv, graph_ops, graph_shard_ops)
from .encoder import (DEFAULTS, GNNEncoder, GNNNodeClassifier,
                      make_query_features, make_support_features)

__all__ = [
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "GraphOps",
    "GraphShardOps",
    "GraphLike",
    "graph_ops",
    "graph_shard_ops",
    "CONV_TYPES",
    "GNNEncoder",
    "GNNNodeClassifier",
    "make_query_features",
    "make_support_features",
    "DEFAULTS",
]
