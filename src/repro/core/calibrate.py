"""Decision-threshold calibration (an extension beyond the paper).

The paper thresholds the predictive probability at 0.5.  Because CGNP's
inner-product logits are not calibrated probabilities, the F1-optimal
threshold varies with the dataset's community-size balance.  This module
selects the threshold maximising mean F1 on validation tasks — a cheap,
pure-inference post-process that requires no retraining.

The ablation bench (`benchmarks/bench_table4_ablation.py` companion in
`bench_calibration.py`) quantifies the gain.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.tensor import no_grad
from ..tasks.task import Task
from .model import CGNP

__all__ = ["calibrate_threshold", "sweep_thresholds"]


def _collect_scores(model: CGNP, tasks: Sequence[Task]
                    ) -> List[Tuple[np.ndarray, np.ndarray, int]]:
    """(probabilities, ground-truth mask, query) for every validation query."""
    model.eval()
    collected = []
    with no_grad():
        for task in tasks:
            context = model.context(task)
            for example in task.queries:
                logits = model.query_logits(context, example.query, task.graph)
                collected.append((logits.sigmoid().data,
                                  example.membership, example.query))
    return collected


def sweep_thresholds(model: CGNP, tasks: Sequence[Task],
                     thresholds: Sequence[float]) -> List[Tuple[float, float]]:
    """Mean validation F1 at each candidate threshold.

    Probabilities are computed once; only the cut varies.
    """
    # Imported lazily: repro.eval depends on repro.core at import time, so
    # a module-level import here would be circular.
    from ..eval.metrics import binary_metrics

    if not tasks:
        raise ValueError("calibration needs at least one validation task")
    scored = _collect_scores(model, tasks)
    results = []
    for threshold in thresholds:
        f1_values = []
        for probabilities, membership, query in scored:
            predicted = probabilities >= threshold
            predicted[query] = True
            keep = np.ones_like(membership)
            keep[query] = False
            f1_values.append(binary_metrics(predicted[keep],
                                            membership[keep]).f1)
        results.append((float(threshold), float(np.mean(f1_values))))
    return results


def calibrate_threshold(model: CGNP, tasks: Sequence[Task],
                        grid: Sequence[float] = tuple(np.linspace(0.1, 0.9, 17)),
                        ) -> Tuple[float, float]:
    """Best (threshold, mean F1) over ``grid`` on the validation tasks."""
    swept = sweep_thresholds(model, tasks, grid)
    best = max(swept, key=lambda pair: pair[1])
    return best
