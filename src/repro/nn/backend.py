"""Precision policies and the pluggable array backend.

This module is the single source of truth for three cross-cutting
numerical choices that used to be hardwired all over the stack:

* **Which element width to compute in.**  The CGNP hot path (spmm and
  dense matmul) is memory-bandwidth-bound, so halving the element width
  is a direct throughput win.  The :class:`Precision` policy holds the
  ambient dtype (``float32`` or ``float64``); every layer that creates
  arrays — tensors, initialisers, normalised adjacencies, feature
  matrices — resolves its dtype through :func:`resolve_dtype` instead of
  naming ``np.float64``.  The process-wide default is ``float64`` (so the
  numeric-equivalence test suite stays exact) and can be overridden
  per-context with ``with precision("float32"):`` or process-wide via the
  ``REPRO_DTYPE`` environment variable / :func:`set_default_dtype`.

* **Which index width sparse structure uses.**  Edge lists, CSR
  ``indices``/``indptr`` and gather/scatter/segment index arrays never
  need to address more than 2^31 nodes in this repository, so they
  default to ``int32`` — halving the index bandwidth of every sparse
  op.  The index policy mirrors the element policy exactly:
  :func:`resolve_index_dtype` is the one call every index-creating site
  makes, ``with index_precision("int64"):`` scopes an override, and
  ``REPRO_INDEX_DTYPE`` / :func:`set_default_index_dtype` set the
  process default.  Index width never changes computed *values* — only
  the width of the bookkeeping arrays — so switching it is always
  numerically safe.

* **Which array library executes the dense/sparse kernels.**  The
  :class:`ArrayBackend` protocol gathers the operations the autograd
  engine actually dispatches — dense matmul, sparse-dense matmul, the
  gather / scatter-add / segment-softmax edge ops of the GAT path, array
  creation, RNG construction — behind one object.  The default
  :class:`NumpyBackend` runs on NumPy + SciPy; :class:`ThreadedBackend`
  partitions spmm row ranges across a reusable thread pool (SciPy's CSR
  kernels release the GIL, so the partitions genuinely run in parallel
  on multi-core machines); :class:`NumbaBackend` JIT-compiles the spmm
  and edge-path hot loops (:mod:`repro.nn.kernels_numba`, imported
  lazily so the default install never needs the numba wheel).  Backends
  are installed with :func:`set_backend` / ``with use_backend(...)`` —
  both accept a registered name (``"numpy"``, ``"threaded"``,
  ``"numba"``) or an instance — and the process default comes from the
  ``REPRO_BACKEND`` environment variable.  :func:`available_backends`
  maps every registered name to whether its dependencies are installed,
  so callers can probe optional backends without try/except.

Cache-key convention
--------------------
Derived operators whose values depend on the element *or* index width
are memoised under ``(op, elem_dtype, index_dtype)`` keys spelled
``"<op>.<elem-name>.<index-name>"`` (e.g.
``"gnn.message_passing.float32.int32"``) in each graph's
:class:`~repro.graph.graph.OpsCache`.  ``invalidate_cached_ops("<op>")``
drops every dtype variant of the family at once.

>>> with precision("float32"):
...     resolve_dtype().name
'float32'
>>> resolve_index_dtype("int64").name
'int64'
>>> with use_backend("threaded"):
...     get_backend().name
'threaded'
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

try:  # SciPy's raw CSR kernels (the same ones ``A @ X`` dispatches to).
    from scipy.sparse import _sparsetools as _csr_kernels
except ImportError:  # pragma: no cover - exercised only on exotic SciPy
    _csr_kernels = None

__all__ = [
    "SUPPORTED_DTYPES",
    "SUPPORTED_INDEX_DTYPES",
    "SUPPORTED_CONTEXT_STORAGE",
    "FUSED_ACTIVATIONS",
    "Precision",
    "precision",
    "index_precision",
    "context_storage",
    "fused_inference",
    "default_dtype",
    "default_index_dtype",
    "default_context_storage",
    "set_default_dtype",
    "set_default_index_dtype",
    "set_default_context_storage",
    "set_fused_inference",
    "fused_inference_enabled",
    "resolve_dtype",
    "resolve_index_dtype",
    "resolve_context_storage",
    "index_dtype_for",
    "as_index_array",
    "ArrayBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "available_backends",
    "backend_names",
    "register_backend",
    "make_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: The element widths the stack supports end to end.
SUPPORTED_DTYPES = ("float32", "float64")

#: The index widths sparse structure supports end to end.
SUPPORTED_INDEX_DTYPES = ("int32", "int64")

#: The widths the serving engine may keep cached context matrices at.
#: ``full`` stores them at the compute dtype; the narrower widths halve
#: (or quarter) the resident bytes and dequantise back to the compute
#: dtype on every decode.
SUPPORTED_CONTEXT_STORAGE = ("full", "float32", "float16", "int8")

#: The activation epilogues the fused kernels understand.  ``relu`` is
#: bitwise against ``np.maximum(x, 0.0)``; ``elu`` matches
#: :func:`repro.nn.functional.elu` exactly on the numpy path and to
#: ≤1e-12 relative on JIT paths (transcendental ulps).
FUSED_ACTIVATIONS = (None, "relu", "elu")

DTypeLike = Union[str, type, np.dtype, "Precision"]


def _canonical_dtype(dtype: DTypeLike) -> np.dtype:
    """Validate and normalise ``dtype`` to a numpy dtype object."""
    if isinstance(dtype, Precision):
        return dtype.dtype
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        # np.dtype raises TypeError for unparseable names (e.g. "fp32");
        # normalise to the same ValueError the not-supported branch uses.
        raise ValueError(
            f"unsupported precision {dtype!r}; choose from "
            f"{SUPPORTED_DTYPES}") from exc
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported precision {resolved.name!r}; choose from "
            f"{SUPPORTED_DTYPES}")
    return resolved


def _canonical_index_dtype(dtype: DTypeLike) -> np.dtype:
    """Validate and normalise an index ``dtype`` to a numpy dtype object."""
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(
            f"unsupported index dtype {dtype!r}; choose from "
            f"{SUPPORTED_INDEX_DTYPES}") from exc
    if resolved.name not in SUPPORTED_INDEX_DTYPES:
        raise ValueError(
            f"unsupported index dtype {resolved.name!r}; choose from "
            f"{SUPPORTED_INDEX_DTYPES}")
    return resolved


class Precision:
    """A value object naming one supported element width.

    Mostly used through the module-level helpers (:func:`precision`,
    :func:`resolve_dtype`), but passing a ``Precision`` anywhere a dtype
    is accepted also works.

    >>> Precision("float32").name
    'float32'
    >>> Precision(np.float64) == Precision("float64")
    True
    >>> Precision("fp8")
    Traceback (most recent call last):
        ...
    ValueError: unsupported precision 'fp8'; choose from ('float32', 'float64')
    """

    __slots__ = ("dtype",)

    def __init__(self, dtype: DTypeLike):
        self.dtype = _canonical_dtype(dtype)

    @property
    def name(self) -> str:
        return self.dtype.name

    def __eq__(self, other) -> bool:
        if isinstance(other, Precision):
            return self.dtype == other.dtype
        try:
            return self.dtype == _canonical_dtype(other)
        except (TypeError, ValueError):
            return NotImplemented

    def __hash__(self) -> int:
        return hash(self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"Precision({self.name!r})"


def _precision_from_env() -> Precision:
    """The process default from ``REPRO_DTYPE``, failing with a message
    that names the environment variable (this runs at import time)."""
    value = os.environ.get("REPRO_DTYPE", "float64")
    try:
        return Precision(value)
    except ValueError as exc:
        raise ValueError(
            f"invalid REPRO_DTYPE environment variable: {exc}") from exc


def _index_dtype_from_env() -> np.dtype:
    """The process default from ``REPRO_INDEX_DTYPE`` (default int32)."""
    value = os.environ.get("REPRO_INDEX_DTYPE", "int32")
    try:
        return _canonical_index_dtype(value)
    except ValueError as exc:
        raise ValueError(
            f"invalid REPRO_INDEX_DTYPE environment variable: {exc}") from exc


def _canonical_context_storage(value: str) -> str:
    """Validate and normalise a context-storage policy name."""
    key = str(value).strip().lower()
    if key not in SUPPORTED_CONTEXT_STORAGE:
        raise ValueError(
            f"unsupported context storage {value!r}; choose from "
            f"{SUPPORTED_CONTEXT_STORAGE}")
    return key


def _context_storage_from_env() -> str:
    """The process default from ``REPRO_CONTEXT_STORAGE`` (default full)."""
    value = os.environ.get("REPRO_CONTEXT_STORAGE", "full")
    try:
        return _canonical_context_storage(value)
    except ValueError as exc:
        raise ValueError(
            f"invalid REPRO_CONTEXT_STORAGE environment variable: "
            f"{exc}") from exc


def _fused_from_env() -> bool:
    """The process default from ``REPRO_FUSED`` (default on)."""
    value = os.environ.get("REPRO_FUSED", "1").strip().lower()
    if value in ("1", "true", "on", "yes"):
        return True
    if value in ("0", "false", "off", "no"):
        return False
    raise ValueError(
        f"invalid REPRO_FUSED environment variable: {value!r} "
        f"(use 1/0, on/off, true/false)")


#: Process-wide default precision; ``precision(...)`` overrides are
#: per-thread, but this base is shared so ``set_default_dtype`` is
#: visible from worker threads too.
_PROCESS_DEFAULT_PRECISION = _precision_from_env()

#: Process-wide default index width (same sharing rules as above).
_PROCESS_DEFAULT_INDEX_DTYPE = _index_dtype_from_env()

#: Process-wide default cache width for serving contexts.
_PROCESS_DEFAULT_CONTEXT_STORAGE = _context_storage_from_env()

#: Process-wide switch for the fused inference kernels (the kill switch
#: is ``REPRO_FUSED=0``; fusion never applies when gradients are on).
_PROCESS_FUSED_INFERENCE = _fused_from_env()


class _PolicyState(threading.local):
    """Per-thread stacks of scoped policy overrides."""

    def __init__(self):
        self.stack = []
        self.index_stack = []
        self.storage_stack = []
        self.fused_stack = []


_POLICY = _PolicyState()


def default_dtype() -> np.dtype:
    """The ambient policy dtype (innermost ``precision`` context wins,
    falling back to the process-wide default)."""
    stack = _POLICY.stack
    return (stack[-1] if stack else _PROCESS_DEFAULT_PRECISION).dtype


def default_index_dtype() -> np.dtype:
    """The ambient index dtype (innermost ``index_precision`` context
    wins, falling back to the process-wide default)."""
    stack = _POLICY.index_stack
    return stack[-1] if stack else _PROCESS_DEFAULT_INDEX_DTYPE


def set_default_dtype(dtype: DTypeLike) -> None:
    """Replace the process-wide default precision (all threads).

    Prefer the scoped ``with precision(...):`` form; this setter exists
    for process entry points (CLI, benchmarks, test harnesses).
    """
    global _PROCESS_DEFAULT_PRECISION
    _PROCESS_DEFAULT_PRECISION = Precision(dtype)


def set_default_index_dtype(dtype: DTypeLike) -> None:
    """Replace the process-wide default index width (all threads)."""
    global _PROCESS_DEFAULT_INDEX_DTYPE
    _PROCESS_DEFAULT_INDEX_DTYPE = _canonical_index_dtype(dtype)


def default_context_storage() -> str:
    """The ambient context-storage policy (innermost ``context_storage``
    context wins, falling back to the process-wide default)."""
    stack = _POLICY.storage_stack
    return stack[-1] if stack else _PROCESS_DEFAULT_CONTEXT_STORAGE


def set_default_context_storage(storage: str) -> None:
    """Replace the process-wide default context cache width (all threads)."""
    global _PROCESS_DEFAULT_CONTEXT_STORAGE
    _PROCESS_DEFAULT_CONTEXT_STORAGE = _canonical_context_storage(storage)


def resolve_context_storage(storage: Optional[str] = None) -> str:
    """``storage`` normalised, or the ambient policy when ``None``.

    The one call every context-caching site makes (the serving engine,
    its ``from_bundle`` constructor and the CLI), mirroring
    :func:`resolve_dtype` for element widths.

    >>> resolve_context_storage()
    'full'
    >>> with context_storage("float16"):
    ...     resolve_context_storage()
    'float16'
    >>> resolve_context_storage("int8")
    'int8'
    """
    if storage is None:
        return default_context_storage()
    return _canonical_context_storage(storage)


@contextlib.contextmanager
def context_storage(storage: str) -> Iterator[str]:
    """Scoped context-storage override:
    ``with context_storage("int8"): ...``."""
    resolved = _canonical_context_storage(storage)
    _POLICY.storage_stack.append(resolved)
    try:
        yield resolved
    finally:
        _POLICY.storage_stack.pop()


def fused_inference_enabled() -> bool:
    """Whether the fused inference kernels are enabled right now.

    This is a *policy*, not a capability probe: the encoder additionally
    requires eval mode and gradients off before it dispatches the fused
    path, so training numerics are never affected by this switch.

    >>> fused_inference_enabled()
    True
    >>> with fused_inference(False):
    ...     fused_inference_enabled()
    False
    """
    stack = _POLICY.fused_stack
    return stack[-1] if stack else _PROCESS_FUSED_INFERENCE


def set_fused_inference(enabled: bool) -> None:
    """Flip the process-wide fused-inference switch (all threads)."""
    global _PROCESS_FUSED_INFERENCE
    _PROCESS_FUSED_INFERENCE = bool(enabled)


@contextlib.contextmanager
def fused_inference(enabled: bool = True) -> Iterator[bool]:
    """Scoped fused-inference override:
    ``with fused_inference(False): ...`` forces the unfused reference
    path even in eval/no-grad mode (the A/B lever benchmarks and parity
    tests use)."""
    _POLICY.fused_stack.append(bool(enabled))
    try:
        yield bool(enabled)
    finally:
        _POLICY.fused_stack.pop()


@contextlib.contextmanager
def precision(dtype: DTypeLike) -> Iterator[Precision]:
    """Scoped precision override: ``with precision("float32"): ...``."""
    policy = Precision(dtype)
    _POLICY.stack.append(policy)
    try:
        yield policy
    finally:
        _POLICY.stack.pop()


@contextlib.contextmanager
def index_precision(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Scoped index-width override.

    >>> with index_precision("int64"):
    ...     resolve_index_dtype().name
    'int64'
    """
    resolved = _canonical_index_dtype(dtype)
    _POLICY.index_stack.append(resolved)
    try:
        yield resolved
    finally:
        _POLICY.index_stack.pop()


def resolve_dtype(dtype: Optional[DTypeLike] = None) -> np.dtype:
    """``dtype`` normalised, or the ambient policy dtype when ``None``.

    This is the one call every array-creating site in the stack makes
    instead of hardcoding an element width.
    """
    if dtype is None:
        return default_dtype()
    return _canonical_dtype(dtype)


def resolve_index_dtype(dtype: Optional[DTypeLike] = None) -> np.dtype:
    """``dtype`` normalised, or the ambient index dtype when ``None``.

    The one call every index-creating site (edge lists, CSR structure,
    gather/scatter/segment indices) makes instead of naming ``np.int64``.

    >>> with index_precision("int32"):
    ...     resolve_index_dtype().name
    'int32'
    >>> resolve_index_dtype("int64") is np.dtype(np.int64)
    True
    """
    if dtype is None:
        return default_index_dtype()
    return _canonical_index_dtype(dtype)


def index_dtype_for(max_value: int,
                    dtype: Optional[DTypeLike] = None) -> np.dtype:
    """The resolved index dtype, widened to int64 when ``max_value``
    genuinely overflows it — correctness beats bandwidth.

    Every site that narrows an int64-staged index array (edge lists,
    batch offsets, validated query ids) routes through this so the
    overflow guard lives in exactly one place.

    >>> with index_precision("int32"):
    ...     (index_dtype_for(100).name, index_dtype_for(2 ** 40).name)
    ('int32', 'int64')
    """
    resolved = resolve_index_dtype(dtype)
    if max_value > np.iinfo(resolved).max:
        return np.dtype(np.int64)
    return resolved


def as_index_array(indices) -> np.ndarray:
    """``indices`` as an integer array at the ambient index policy width.

    Arrays that are already integral pass through unchanged — they were
    materialised under some policy, and re-casting per call would waste
    the bandwidth the policy saves.  The gather (``Tensor.take_rows``)
    and scatter/segment (``repro.nn.functional``) paths share this
    coercion so they can never diverge.
    """
    if isinstance(indices, np.ndarray) and np.issubdtype(indices.dtype,
                                                         np.integer):
        return indices
    return np.asarray(indices, dtype=resolve_index_dtype())


def _check_act(act: Optional[str]) -> None:
    if act not in FUSED_ACTIVATIONS:
        raise ValueError(
            f"unsupported fused activation {act!r}; choose from "
            f"{FUSED_ACTIVATIONS}")


def _apply_act_inplace(out: np.ndarray, act: Optional[str]) -> None:
    """Apply a fused activation epilogue to an array the caller owns.

    ``relu`` is ``np.maximum(x, 0.0)`` (bitwise against ``Tensor.relu``);
    ``elu`` is the exact alpha=1 formula of
    :func:`repro.nn.functional.elu` — ``where(x > 0, x, exp(min(x, 0)) -
    1)`` — so the fused and unfused encoder forwards agree bitwise on
    the numpy path.
    """
    if act == "relu":
        np.maximum(out, 0.0, out=out)
    elif act == "elu":
        np.copyto(out, np.where(out > 0,
                                out, np.exp(np.minimum(out, 0.0)) - 1.0))


def _apply_bias_act_inplace(out: np.ndarray, bias: Optional[np.ndarray],
                            act: Optional[str]) -> None:
    """Bias-add then activation, mutating ``out`` (a freshly-computed
    product the caller owns — never a caller-visible input)."""
    _check_act(act)
    if bias is not None:
        out += bias
    _apply_act_inplace(out, act)


class ArrayBackend:
    """Protocol for the dense/sparse kernels the autograd engine dispatches.

    The base class documents the surface; :class:`NumpyBackend` is the
    reference implementation and :class:`ThreadedBackend` the parallel
    one.  An alternative backend subclasses this, overrides the kernels
    it accelerates, and is installed via :func:`set_backend`
    (process-wide) or ``with use_backend(...)`` (scoped).  All methods
    take and return numpy-compatible arrays so backends can be swapped
    without touching the layers above.  See ``docs/backends.md`` for a
    walkthrough of writing one.

    >>> class NegatingBackend(NumpyBackend):
    ...     name = "negating"
    ...     def matmul(self, a, b):
    ...         return -np.matmul(a, b)
    >>> with use_backend(NegatingBackend()):
    ...     float(get_backend().matmul(np.eye(2), np.eye(2))[0, 0])
    -1.0
    """

    #: Human-readable backend identifier (recorded in provenance).
    name = "abstract"

    # -- array creation -------------------------------------------------
    def asarray(self, data, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        raise NotImplementedError

    def zeros(self, shape, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        raise NotImplementedError

    def ones(self, shape, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        raise NotImplementedError

    def full(self, shape, value, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        raise NotImplementedError

    # -- dense kernels --------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense (possibly batched) matrix product."""
        raise NotImplementedError

    def bias_act(self, x: np.ndarray, bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None) -> np.ndarray:
        """Fused ``act(x + bias)`` epilogue (one elementwise pass).

        ``bias`` broadcasts over rows (or is ``None``); ``act`` is one of
        :data:`FUSED_ACTIVATIONS`.  The input is never mutated.  Numerics
        contract: bitwise-identical to the unfused ``x + bias`` followed
        by the reference activation on the numpy path; JIT backends may
        differ on the ``elu`` transcendental by ulps (≤1e-12 relative).
        Serves the inference-mode epilogue of layers whose main kernel is
        dense (GAT's head combination, SAGE's linear mix).
        """
        raise NotImplementedError

    # -- sparse kernels -------------------------------------------------
    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """Sparse @ dense product; ``matrix`` is a constant operator."""
        raise NotImplementedError

    def spmm_bias_act(self, matrix: sp.spmatrix, dense: np.ndarray,
                      bias: Optional[np.ndarray] = None,
                      act: Optional[str] = None) -> np.ndarray:
        """Fused ``act(matrix @ dense + bias)`` — one pass over the CSR.

        The serving hot path of the GCN layer: the unfused form walks the
        output array three times (spmm accumulate, bias add, activation);
        backends fuse the bias/activation epilogue into the row loop (or
        its chunk epilogue) so each output row is touched once while it
        is still cache-hot.  Same numerics contract as :meth:`bias_act`:
        ``relu`` and the bias add are bitwise against the unfused
        reference, ``elu`` is exact on numpy and ≤1e-12 relative on JIT
        backends.  ``act=None, bias=None`` degrades to :meth:`spmm`.
        """
        raise NotImplementedError

    def to_operator(self, matrix: sp.spmatrix,
                    dtype: Optional[DTypeLike] = None,
                    index_dtype: Optional[DTypeLike] = None) -> sp.csr_matrix:
        """Canonicalise a sparse matrix into this backend's operator form
        (CSR at the resolved element *and* index dtypes), copying only
        when necessary."""
        raise NotImplementedError

    # -- edge-path kernels (gather / scatter / segment softmax) ---------
    def gather_rows(self, source: np.ndarray,
                    indices: np.ndarray) -> np.ndarray:
        """``source[indices]`` — row gather along axis 0 (exact)."""
        raise NotImplementedError

    def scatter_add_rows(self, source: np.ndarray, indices: np.ndarray,
                         num_rows: int) -> np.ndarray:
        """Rows of ``source`` summed into ``num_rows`` output rows:
        ``out[indices[e]] += source[e]``, accumulating **in edge order**
        (``np.add.at``'s order) so backends agree bitwise."""
        raise NotImplementedError

    def segment_softmax(self, scores: np.ndarray, segments: np.ndarray,
                        num_segments: int) -> np.ndarray:
        """Stable softmax of 1-D ``scores`` normalised within each
        segment: per-segment max subtraction, exp, per-segment sum (in
        edge order) and a ``1e-16`` denominator guard at the scores'
        dtype.  Backends may fuse the passes; only the transcendental may
        differ (by ulps), never the accumulation order."""
        raise NotImplementedError

    # -- randomness -----------------------------------------------------
    def rng(self, seed: int) -> np.random.Generator:
        """A fresh seeded generator for parameter init / sampling."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The default backend: NumPy dense kernels + SciPy sparse kernels."""

    name = "numpy"

    def asarray(self, data, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.asarray(data, dtype=resolve_dtype(dtype))

    def zeros(self, shape, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.zeros(shape, dtype=resolve_dtype(dtype))

    def ones(self, shape, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.ones(shape, dtype=resolve_dtype(dtype))

    def full(self, shape, value, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.full(shape, value, dtype=resolve_dtype(dtype))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def bias_act(self, x: np.ndarray, bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None) -> np.ndarray:
        _check_act(act)
        if bias is not None:
            x = x + bias                   # fresh array; finish in place
            _apply_act_inplace(x, act)
            return x
        if act == "relu":
            return np.maximum(x, 0.0)
        if act == "elu":
            return np.where(x > 0, x, np.exp(np.minimum(x, 0.0)) - 1.0)
        return x

    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        return matrix @ dense

    def spmm_bias_act(self, matrix: sp.spmatrix, dense: np.ndarray,
                      bias: Optional[np.ndarray] = None,
                      act: Optional[str] = None) -> np.ndarray:
        out = matrix @ dense               # fresh array; epilogue in place
        _apply_bias_act_inplace(out, bias, act)
        return out

    def to_operator(self, matrix: sp.spmatrix,
                    dtype: Optional[DTypeLike] = None,
                    index_dtype: Optional[DTypeLike] = None) -> sp.csr_matrix:
        target = resolve_dtype(dtype)
        operator = matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()
        if operator.dtype != target:
            operator = operator.astype(target)
        return _canonicalise_operator_indices(
            operator, resolve_index_dtype(index_dtype))

    def gather_rows(self, source: np.ndarray,
                    indices: np.ndarray) -> np.ndarray:
        return source[indices]

    def scatter_add_rows(self, source: np.ndarray, indices: np.ndarray,
                         num_rows: int) -> np.ndarray:
        out = np.zeros((num_rows,) + source.shape[1:], dtype=source.dtype)
        np.add.at(out, indices, source)
        return out

    def segment_softmax(self, scores: np.ndarray, segments: np.ndarray,
                        num_segments: int) -> np.ndarray:
        seg_max = np.full(num_segments, -np.inf, dtype=scores.dtype)
        np.maximum.at(seg_max, segments, scores)
        seg_max[~np.isfinite(seg_max)] = 0.0
        exp = np.exp(scores - seg_max[segments])
        denom = np.zeros(num_segments, dtype=scores.dtype)
        np.add.at(denom, segments, exp)
        return exp / (denom + scores.dtype.type(1e-16))[segments]

    def rng(self, seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)


def _canonicalise_operator_indices(operator: sp.csr_matrix,
                                   index_dtype: np.dtype) -> sp.csr_matrix:
    """CSR with ``indices``/``indptr`` at ``index_dtype``, sharing data.

    Falls back to int64 when the matrix genuinely needs it (shape or nnz
    beyond the int32 range) — correctness beats bandwidth.  Never mutates
    the input: a fresh container shares the data array and casts only the
    structure arrays that differ.
    """
    index_dtype = index_dtype_for(max(max(operator.shape), operator.nnz),
                                  index_dtype)
    if (operator.indices.dtype == index_dtype
            and operator.indptr.dtype == index_dtype):
        return operator
    recast = sp.csr_matrix(operator.shape, dtype=operator.dtype)
    recast.data = operator.data
    recast.indices = operator.indices.astype(index_dtype, copy=False)
    recast.indptr = operator.indptr.astype(index_dtype, copy=False)
    block_offsets = getattr(operator, "block_offsets", None)
    if block_offsets is not None:
        recast.block_offsets = block_offsets
    return recast


class ThreadedBackend(NumpyBackend):
    """Row-partitioned spmm over a reusable thread pool.

    ``spmm`` splits the CSR row range into ``num_threads`` chunks —
    aligned to block boundaries when the operator came from a
    block-diagonal :func:`~repro.graph.batch.stack_csr` collation
    (``block_offsets`` attribute), nnz-balanced even row splits
    otherwise — and runs SciPy's own CSR kernel on each chunk directly
    into a shared output.  The kernels release the GIL, so chunks execute
    in parallel on multi-core machines; per-row arithmetic is the exact
    scipy kernel in the exact same order, so outputs are **bitwise
    identical** to :class:`NumpyBackend` at any thread count.

    Below ``serial_rows`` rows the partitioning overhead outweighs the
    win and ``spmm`` runs the kernel serially (still skipping SciPy's
    per-call dispatch/validation); above it the chunk count is capped at
    ``rows // serial_rows`` so every chunk amortises its dispatch, even
    when ``num_threads`` is large.  Everything else (dense matmul, array
    creation, RNG) is inherited from :class:`NumpyBackend`.

    Parameters
    ----------
    num_threads:
        Worker count; default ``REPRO_NUM_THREADS`` or ``os.cpu_count()``.
    serial_rows:
        Minimum rows per chunk before a thread is worth dispatching.
        The default is measured, not guessed: a
        ``ThreadPoolExecutor`` submit+result round trip costs ≈11 µs on
        this stack while ``scipy``'s ``csr_matvecs`` kernel retires a
        degree-8, width-128 row in ≈0.97 µs (float64) / ≈0.55 µs
        (float32) — see ``benchmarks/BENCH_threaded.json`` and the
        ``bench-multicore`` CI artifacts.  Requiring each chunk to
        amortise its dispatch ≈8x puts the crossover at ≈360 rows
        (float64) to ≈650 rows (float32); 512 splits the difference.
        The old default of 2048 left common serving operators
        (≤2000-node task graphs) permanently single-threaded.

    >>> rng = np.random.default_rng(0)
    >>> operator = sp.csr_matrix((rng.random((64, 64)) < 0.2)
    ...                          * rng.standard_normal((64, 64)))
    >>> dense = rng.standard_normal((64, 8))
    >>> backend = ThreadedBackend(num_threads=4)
    >>> bool(np.array_equal(backend.spmm(operator, dense),
    ...                     NumpyBackend().spmm(operator, dense)))
    True
    """

    name = "threaded"

    def __init__(self, num_threads: Optional[int] = None,
                 serial_rows: int = 512):
        if num_threads is None:
            env = os.environ.get("REPRO_NUM_THREADS", "")
            num_threads = int(env) if env else (os.cpu_count() or 1)
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = int(num_threads)
        self.serial_rows = int(serial_rows)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- pool lifecycle -------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    # The submitting thread always computes one chunk
                    # itself, so the pool needs one fewer worker.
                    self._pool = ThreadPoolExecutor(
                        max_workers=max(self.num_threads - 1, 1),
                        thread_name_prefix="repro-spmm")
        return self._pool

    def shutdown(self) -> None:
        """Tear down the worker pool (it is rebuilt lazily on next use)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # -- the partitioned kernel -----------------------------------------
    @staticmethod
    def _kernel_rows(matrix: sp.csr_matrix, dense: np.ndarray,
                     out: np.ndarray, lo: int, hi: int) -> None:
        """Rows ``[lo, hi)`` of ``matrix @ dense`` into ``out[lo:hi]``.

        ``indptr[lo:hi+1]`` holds *absolute* offsets into the full
        ``indices``/``data`` arrays, which is exactly what the kernel
        indexes with — so a row-range call needs no copy of the operator.
        ``out`` must be zero-initialised (the kernels accumulate).
        """
        indptr = matrix.indptr[lo:hi + 1]
        if dense.ndim == 1:
            _csr_kernels.csr_matvec(
                hi - lo, matrix.shape[1], indptr, matrix.indices,
                matrix.data, dense, out[lo:hi])
        else:
            _csr_kernels.csr_matvecs(
                hi - lo, matrix.shape[1], dense.shape[1], indptr,
                matrix.indices, matrix.data, dense.reshape(-1),
                out[lo:hi].reshape(-1))

    def _row_bounds(self, matrix: sp.csr_matrix, chunks: int) -> np.ndarray:
        """Chunk boundaries balancing nnz across ``chunks`` chunks.

        Block-diagonal operators carry their collation offsets
        (``block_offsets``); cutting only at block boundaries keeps each
        member graph's rows on one thread, which preserves cache locality
        of the member's column range.  Other operators cut wherever the
        nnz prefix crosses each balance target.
        """
        rows = matrix.shape[0]
        nnz = int(matrix.indptr[-1])
        targets = (np.arange(1, chunks, dtype=np.int64) * nnz) // chunks
        blocks = getattr(matrix, "block_offsets", None)
        if blocks is not None and len(blocks) > 2:
            candidates = np.asarray(blocks, dtype=np.int64)
            prefix = matrix.indptr[candidates].astype(np.int64)
            cuts = candidates[np.searchsorted(prefix, targets)]
        else:
            cuts = np.searchsorted(matrix.indptr, targets).astype(np.int64)
        return np.unique(np.concatenate([[0], cuts, [rows]]))

    def _chunk_count(self, rows: int) -> int:
        """How many chunks ``rows`` rows justify.

        Capped at ``rows // serial_rows`` so each dispatched chunk keeps
        at least ``serial_rows`` rows — the measured ≈8x amortisation of
        the pool's ≈11 µs submit round trip (see the class docstring) —
        rather than letting a high thread count shred a mid-sized
        operator into dispatch-dominated slivers.
        """
        return min(self.num_threads, rows // self.serial_rows)

    def _spmm_supported(self, matrix, dense: np.ndarray) -> bool:
        return not (_csr_kernels is None
                    or getattr(matrix, "format", None) != "csr"
                    or matrix.dtype != dense.dtype
                    or matrix.indices.dtype != matrix.indptr.dtype
                    or dense.ndim not in (1, 2)
                    or matrix.shape[1] != dense.shape[0]
                    or not dense.flags.c_contiguous)

    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        rows = matrix.shape[0]
        if not self._spmm_supported(matrix, dense):
            # Anything the raw kernels can't take verbatim goes through
            # scipy's own dispatch (which handles upcasts, layouts, and
            # raises the dimension-mismatch error for bad shapes — the
            # raw kernels would read out of bounds instead).
            return matrix @ dense
        out = np.zeros((rows,) + dense.shape[1:], dtype=dense.dtype)
        chunks = self._chunk_count(rows)
        if chunks <= 1:
            self._kernel_rows(matrix, dense, out, 0, rows)
            return out
        bounds = self._row_bounds(matrix, chunks)
        if len(bounds) < 3:
            self._kernel_rows(matrix, dense, out, 0, rows)
            return out
        pool = self._executor()
        futures = [pool.submit(self._kernel_rows, matrix, dense, out,
                               int(lo), int(hi))
                   for lo, hi in zip(bounds[:-2], bounds[1:-1])]
        # The caller computes the last chunk itself instead of idling.
        self._kernel_rows(matrix, dense, out, int(bounds[-2]), int(bounds[-1]))
        for future in futures:
            future.result()
        return out

    def _fused_rows(self, matrix: sp.csr_matrix, dense: np.ndarray,
                    out: np.ndarray, lo: int, hi: int,
                    bias: Optional[np.ndarray], act: Optional[str]) -> None:
        """One chunk of the fused kernel: spmm rows, then the epilogue on
        the same cache-hot slice before the worker moves on."""
        self._kernel_rows(matrix, dense, out, lo, hi)
        view = out[lo:hi]
        if bias is not None:
            view += bias
        _apply_act_inplace(view, act)

    def spmm_bias_act(self, matrix: sp.spmatrix, dense: np.ndarray,
                      bias: Optional[np.ndarray] = None,
                      act: Optional[str] = None) -> np.ndarray:
        _check_act(act)
        rows = matrix.shape[0]
        if (not self._spmm_supported(matrix, dense)
                or dense.ndim != 2
                or (bias is not None
                    and not (bias.ndim == 1
                             and bias.shape[0] == dense.shape[1]
                             and bias.dtype == dense.dtype))):
            out = self.spmm(matrix, dense)   # fresh in every branch
            _apply_bias_act_inplace(out, bias, act)
            return out
        out = np.zeros((rows, dense.shape[1]), dtype=dense.dtype)
        chunks = self._chunk_count(rows)
        if chunks <= 1:
            self._fused_rows(matrix, dense, out, 0, rows, bias, act)
            return out
        bounds = self._row_bounds(matrix, chunks)
        if len(bounds) < 3:
            self._fused_rows(matrix, dense, out, 0, rows, bias, act)
            return out
        pool = self._executor()
        futures = [pool.submit(self._fused_rows, matrix, dense, out,
                               int(lo), int(hi), bias, act)
                   for lo, hi in zip(bounds[:-2], bounds[1:-1])]
        self._fused_rows(matrix, dense, out, int(bounds[-2]),
                         int(bounds[-1]), bias, act)
        for future in futures:
            future.result()
        return out


def _import_numba_kernels():
    """Import the JIT kernel module, or fail with an install hint.

    This is the single gate that keeps numba optional: nothing on the
    default path imports :mod:`repro.nn.kernels_numba`, so a stock
    install never pays the dependency — or the import cost — and only an
    explicit ``make_backend("numba")`` can hit this error.
    """
    try:
        from . import kernels_numba
    except ImportError as exc:
        raise ImportError(
            "backend 'numba' requires the optional numba dependency which "
            "is not installed; run `pip install numba` to enable the JIT "
            "kernels (the default 'numpy' and 'threaded' backends need no "
            "extra packages)") from exc
    return kernels_numba


def _numba_installed() -> bool:
    """Whether the numba wheel is importable, without importing it.

    ``sys.modules`` is consulted first so tests can hide the module by
    stubbing the entry to ``None`` (the standard import-blocking trick),
    and so an already-imported numba is reported without a filesystem
    probe.
    """
    import importlib.util
    import sys
    if "numba" in sys.modules:
        return sys.modules["numba"] is not None
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic loaders
        return False


class NumbaBackend(NumpyBackend):
    """JIT-compiled kernels for the spmm + GAT edge-path hot loops.

    Construction imports :mod:`repro.nn.kernels_numba` (and thereby
    numba) lazily; when the wheel is absent it raises ``ImportError``
    with an install hint, keeping the default install dependency-free.

    Kernel contracts (see the kernel module for the reasoning):

    * ``spmm`` — CSR rows accumulated in SciPy's order, parallel over
      rows, or over collation blocks when the operator carries the
      ``block_offsets`` annotation of a :func:`~repro.graph.batch.stack_csr`
      batch: **bitwise identical** to :class:`NumpyBackend`.
    * ``gather_rows`` / ``scatter_add_rows`` — exact / edge-order
      accumulation: **bitwise identical**.
    * ``segment_softmax`` — fused max/exp/normalise; numba's ``exp``
      may differ from NumPy's by ulps (≤1e-12 relative at float64).

    Anything a kernel cannot take verbatim (unsupported dtype, ndim,
    non-contiguous input) falls back to the inherited NumPy reference.
    Kernels specialise per ``(element dtype, index dtype)`` signature,
    so both process policies are honoured with no cross-casting.

    Parameters
    ----------
    num_threads:
        Optional thread count for the parallel kernels.  Numba's
        threading layer is process-global, so this clamps and installs
        the count for every numba kernel in the process.
    """

    name = "numba"

    def __init__(self, num_threads: Optional[int] = None):
        self._kernels = _import_numba_kernels()
        if num_threads is None:
            # Honour the same env policy as ThreadedBackend so one
            # REPRO_NUM_THREADS setting sizes whichever parallel
            # backend is selected.
            env = os.environ.get("REPRO_NUM_THREADS", "")
            if env:
                num_threads = int(env)
        if num_threads is not None:
            if num_threads < 1:
                raise ValueError(
                    f"num_threads must be >= 1, got {num_threads}")
            self.num_threads = self._kernels.set_num_threads(num_threads)
        else:
            # Report what prange kernels actually run with: the count is
            # process-global, so an earlier set_num_threads (from any
            # instance) may sit below the launch ceiling.
            self.num_threads = self._kernels.current_threads()

    def warmup(self, dtype: Optional[DTypeLike] = None,
               index_dtype: Optional[DTypeLike] = None) -> None:
        """Eagerly compile every kernel for one signature pair (defaults:
        the ambient element and index policies)."""
        self._kernels.warmup(resolve_dtype(dtype),
                             resolve_index_dtype(index_dtype))

    @staticmethod
    def _supported(*arrays: np.ndarray) -> bool:
        for array in arrays:
            if array.dtype.name not in SUPPORTED_DTYPES:
                return False
            if not array.flags.c_contiguous:
                return False
        return True

    @staticmethod
    def _index_supported(indices: np.ndarray) -> bool:
        return (indices.dtype.name in SUPPORTED_INDEX_DTYPES
                and indices.flags.c_contiguous)

    @staticmethod
    def _indices_in_range(indices: np.ndarray, limit: int) -> bool:
        """Whether every index lies in ``[0, limit)``.

        The JIT kernels run without bounds checks, so anything outside
        that range must take the NumPy reference path instead — which
        either raises the proper ``IndexError`` or applies NumPy's
        negative-index semantics, exactly as the other backends do.
        The cost is two simple O(E) reductions (min, then max) per call;
        the kernels they protect make at least one O(E) pass doing real
        work per element (exp, multiply-add over feature width), so the
        guard stays a minor fraction of each dispatch rather than
        warranting an identity-keyed validation cache.
        """
        if indices.size == 0:
            return True
        return bool(indices.min() >= 0) and bool(indices.max() < limit)

    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        if (getattr(matrix, "format", None) != "csr"
                or matrix.dtype != dense.dtype
                or matrix.indices.dtype != matrix.indptr.dtype
                or not self._index_supported(matrix.indices)
                or dense.ndim not in (1, 2)
                or matrix.shape[1] != dense.shape[0]
                or not self._supported(matrix.data, dense)):
            # Upcasts, exotic layouts and shape mismatches go through
            # scipy's own dispatch (which also raises the proper error
            # for bad shapes — the raw kernels would read out of bounds).
            return matrix @ dense
        out = np.zeros((matrix.shape[0],) + dense.shape[1:],
                       dtype=dense.dtype)
        if dense.ndim == 1:
            self._kernels.spmm_vec(matrix.indptr, matrix.indices,
                                   matrix.data, dense, out)
            return out
        blocks = getattr(matrix, "block_offsets", None)
        # The block kernel iterates exactly [blocks[0], blocks[-1]), so
        # only a full-span annotation (as stack_csr produces) may select
        # it; anything else would silently zero the uncovered rows.
        if (blocks is not None and len(blocks) > 2
                and int(blocks[0]) == 0
                and int(blocks[-1]) == matrix.shape[0]):
            self._kernels.spmm_blocks(
                matrix.indptr, matrix.indices, matrix.data, dense,
                np.asarray(blocks, dtype=np.int64), out)
        else:
            self._kernels.spmm_rows(matrix.indptr, matrix.indices,
                                    matrix.data, dense, out)
        return out

    #: Activation dispatch codes of the fused JIT kernels.
    _ACT_CODES = {None: 0, "relu": 1, "elu": 2}

    def _bias_supported(self, bias: Optional[np.ndarray],
                        width: int, dtype: np.dtype) -> bool:
        return (bias is None
                or (bias.ndim == 1 and bias.shape[0] == width
                    and bias.dtype == dtype and bias.flags.c_contiguous))

    def bias_act(self, x: np.ndarray, bias: Optional[np.ndarray] = None,
                 act: Optional[str] = None) -> np.ndarray:
        _check_act(act)
        if (x.ndim != 2 or not self._supported(x)
                or not self._bias_supported(bias, x.shape[1], x.dtype)):
            return super().bias_act(x, bias, act)
        out = np.empty_like(x)
        bias_arr = bias if bias is not None else np.empty(0, dtype=x.dtype)
        self._kernels.bias_act_2d(x, bias_arr, bias is not None,
                                  self._ACT_CODES[act], out)
        return out

    def spmm_bias_act(self, matrix: sp.spmatrix, dense: np.ndarray,
                      bias: Optional[np.ndarray] = None,
                      act: Optional[str] = None) -> np.ndarray:
        _check_act(act)
        if (getattr(matrix, "format", None) != "csr"
                or matrix.dtype != dense.dtype
                or matrix.indices.dtype != matrix.indptr.dtype
                or not self._index_supported(matrix.indices)
                or dense.ndim != 2
                or matrix.shape[1] != dense.shape[0]
                or not self._supported(matrix.data, dense)
                or not self._bias_supported(bias, dense.shape[1],
                                            dense.dtype)):
            return super().spmm_bias_act(matrix, dense, bias, act)
        out = np.zeros((matrix.shape[0], dense.shape[1]), dtype=dense.dtype)
        bias_arr = (bias if bias is not None
                    else np.empty(0, dtype=dense.dtype))
        act_code = self._ACT_CODES[act]
        blocks = getattr(matrix, "block_offsets", None)
        # Same full-span rule as spmm: a partial annotation must not
        # silently skip the uncovered rows' epilogue.
        if (blocks is not None and len(blocks) > 2
                and int(blocks[0]) == 0
                and int(blocks[-1]) == matrix.shape[0]):
            self._kernels.spmm_bias_act_blocks(
                matrix.indptr, matrix.indices, matrix.data, dense,
                np.asarray(blocks, dtype=np.int64), bias_arr,
                bias is not None, act_code, out)
        else:
            self._kernels.spmm_bias_act_rows(
                matrix.indptr, matrix.indices, matrix.data, dense,
                bias_arr, bias is not None, act_code, out)
        return out

    def gather_rows(self, source: np.ndarray,
                    indices: np.ndarray) -> np.ndarray:
        if (source.ndim not in (1, 2) or indices.ndim != 1
                or not self._supported(source)
                or not self._index_supported(indices)
                or not self._indices_in_range(indices, source.shape[0])):
            return super().gather_rows(source, indices)
        out = np.empty((indices.shape[0],) + source.shape[1:],
                       dtype=source.dtype)
        if source.ndim == 1:
            self._kernels.gather_rows_1d(source, indices, out)
        else:
            self._kernels.gather_rows_2d(source, indices, out)
        return out

    def scatter_add_rows(self, source: np.ndarray, indices: np.ndarray,
                         num_rows: int) -> np.ndarray:
        if (source.ndim not in (1, 2) or indices.ndim != 1
                or indices.shape[0] != source.shape[0]
                or not self._supported(source)
                or not self._index_supported(indices)
                or not self._indices_in_range(indices, num_rows)):
            # The length check matters beyond dispatch hygiene: the JIT
            # kernel iterates the index array unbounds-checked, so a
            # mismatch must take np.add.at's error path instead.
            return super().scatter_add_rows(source, indices, num_rows)
        out = np.zeros((num_rows,) + source.shape[1:], dtype=source.dtype)
        if source.ndim == 1:
            self._kernels.scatter_add_1d(source, indices, out)
        else:
            self._kernels.scatter_add_2d(source, indices, out)
        return out

    def segment_softmax(self, scores: np.ndarray, segments: np.ndarray,
                        num_segments: int) -> np.ndarray:
        if (scores.ndim != 1 or segments.ndim != 1
                or segments.shape[0] != scores.shape[0]
                or not self._supported(scores)
                or not self._index_supported(segments)
                or not self._indices_in_range(segments, num_segments)):
            # Length mismatches take the numpy path (np.maximum.at's
            # ValueError) — the JIT kernel reads segments unchecked.
            return super().segment_softmax(scores, segments, num_segments)
        out = np.empty_like(scores)
        self._kernels.segment_softmax(
            scores, segments,
            np.full(num_segments, -np.inf, dtype=scores.dtype),
            np.zeros(num_segments, dtype=scores.dtype),
            scores.dtype.type(1e-16), out)
        return out


def _make_auto_backend(**options) -> ArrayBackend:
    """The measured default backend choice for this machine.

    Derived from the committed perf records rather than guessed: the
    1-CPU container record (``benchmarks/BENCH_threaded.json``) shows
    the partitioned spmm at 0.85–1.0x on a single core (pure dispatch
    overhead), while the ``bench-multicore`` CI job asserts ≥1.3x on
    every 2+-core runner.  So ``auto`` is :class:`ThreadedBackend` when
    the machine has 2+ cores and :class:`NumpyBackend` otherwise
    (``options`` such as ``num_threads`` are forwarded to the threaded
    backend and ignored on single-core hosts, where they have nothing to
    size).  The instance keeps its concrete name (``"threaded"`` /
    ``"numpy"``), so provenance records the choice that actually ran.
    """
    if (os.cpu_count() or 1) >= 2:
        return ThreadedBackend(**options)
    return NumpyBackend()


#: Registered backend factories, keyed by name.
_BACKEND_FACTORIES: Dict[str, Callable[..., ArrayBackend]] = {
    "numpy": NumpyBackend,
    "threaded": ThreadedBackend,
    "numba": NumbaBackend,
    "auto": _make_auto_backend,
}

#: Optional per-backend installation probes; names without one are
#: always installed (no optional dependencies).
_BACKEND_PROBES: Dict[str, Callable[[], bool]] = {
    "numba": _numba_installed,
}


def available_backends() -> Dict[str, bool]:
    """The registered backends mapped to whether they are installed.

    The mapping iterates in sorted-name order, so the pre-existing
    names-only idioms (``list(...)``, ``"numpy" in ...``, iteration)
    keep working unchanged; :func:`backend_names` is the explicit
    names-only view.  A ``False`` value means the backend is registered
    but its optional dependency is missing — :func:`make_backend` on it
    raises ``ImportError`` with the install hint.

    >>> backend_names()
    ('auto', 'numba', 'numpy', 'threaded')
    >>> available_backends()["numpy"]
    True
    """
    return {name: _BACKEND_PROBES.get(name, _always_installed)()
            for name in sorted(_BACKEND_FACTORIES)}


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, sorted (installed or not)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def _always_installed() -> bool:
    return True


def register_backend(name: str, factory: Callable[..., ArrayBackend],
                     installed: Optional[Callable[[], bool]] = None) -> None:
    """Register a backend factory under ``name`` for :func:`make_backend`.

    ``installed`` is an optional zero-argument probe reporting whether
    the backend's dependencies are importable (for
    :func:`available_backends`); omit it for dependency-free backends.
    Re-registering a name is an error — it almost always indicates an
    accidental double import.
    """
    key = name.strip().lower()
    if key in _BACKEND_FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKEND_FACTORIES[key] = factory
    if installed is not None:
        _BACKEND_PROBES[key] = installed


def make_backend(name: str, **options) -> ArrayBackend:
    """Instantiate a registered backend by name.

    ``options`` are forwarded to the factory (e.g.
    ``make_backend("threaded", num_threads=4)``).  Unknown names raise
    ``ValueError``; a registered backend whose optional dependency is
    missing raises ``ImportError`` with the install hint (probe first
    with :func:`available_backends` to avoid the try/except).

    >>> make_backend("numpy").name
    'numpy'
    >>> make_backend("threaded", num_threads=2).num_threads
    2
    """
    factory = _BACKEND_FACTORIES.get(name.strip().lower())
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; choose from {backend_names()}")
    return factory(**options)


def _coerce_backend(backend: Union[str, ArrayBackend],
                    **options) -> ArrayBackend:
    if isinstance(backend, str):
        return make_backend(backend, **options)
    if options:
        raise TypeError(
            "backend options are only accepted together with a backend "
            "name, not a ready instance")
    if not isinstance(backend, ArrayBackend):
        raise TypeError(
            f"expected an ArrayBackend or a registered backend name, got "
            f"{type(backend).__name__}")
    return backend


def _backend_from_env() -> ArrayBackend:
    """The process default from ``REPRO_BACKEND`` (default numpy)."""
    name = os.environ.get("REPRO_BACKEND", "numpy")
    try:
        return make_backend(name)
    except ValueError as exc:
        raise ValueError(
            f"invalid REPRO_BACKEND environment variable: {exc}") from exc
    except ImportError as exc:
        # Fail fast rather than silently degrade to numpy: an explicit
        # REPRO_BACKEND request that cannot be honoured should never let
        # a serving fleet lose its JIT without noticing.  The message
        # names both ways out.
        raise ImportError(
            f"REPRO_BACKEND={name} needs an optional dependency ({exc}); "
            f"install it, or unset REPRO_BACKEND to use the default "
            f"numpy backend") from exc


#: Process-wide default backend (shared across threads, like the
#: precision default); ``use_backend`` overrides are per-thread.
_PROCESS_DEFAULT_BACKEND = _backend_from_env()


class _BackendState(threading.local):
    """Per-thread stack of scoped ``use_backend(...)`` overrides."""

    def __init__(self):
        self.stack = []


_BACKEND_STATE = _BackendState()


def get_backend() -> ArrayBackend:
    """The active backend (innermost ``use_backend`` context wins,
    falling back to the process-wide default)."""
    stack = _BACKEND_STATE.stack
    return stack[-1] if stack else _PROCESS_DEFAULT_BACKEND


def set_backend(backend: Union[str, ArrayBackend], **options) -> None:
    """Install a backend as the process-wide default (all threads).

    Accepts an :class:`ArrayBackend` instance or a registered name (with
    factory ``options``): ``set_backend("threaded", num_threads=8)``.
    """
    global _PROCESS_DEFAULT_BACKEND
    _PROCESS_DEFAULT_BACKEND = _coerce_backend(backend, **options)


@contextlib.contextmanager
def use_backend(backend: Union[str, ArrayBackend],
                **options) -> Iterator[ArrayBackend]:
    """Scoped backend override: ``with use_backend("threaded"): ...``.

    Accepts an instance or a registered name, like :func:`set_backend`.
    """
    resolved = _coerce_backend(backend, **options)
    _BACKEND_STATE.stack.append(resolved)
    try:
        yield resolved
    finally:
        _BACKEND_STATE.stack.pop()
