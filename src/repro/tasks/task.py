"""Community-search task abstraction.

A task ``T = (G, Q, L)`` (section III of the paper) is a graph with a set
of query nodes, each carrying *partial* ground truth: a handful of positive
samples from the query's community and negative samples from outside it.
Tasks are split into a **support set** (the shots a model may adapt on) and
a **query set** (held-out queries the model is evaluated on).

Evaluation additionally needs the *full* ground-truth community of each
query inside the task graph, which the sampler records as a boolean
membership mask — the model never sees it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph, node_feature_matrix

__all__ = ["QueryExample", "Task", "TaskSet"]


@dataclasses.dataclass
class QueryExample:
    """One query node with partial labels and full evaluation ground truth.

    Attributes
    ----------
    query:
        The query node (local id in the task graph).
    positives:
        Sampled members of the query's community, ``l⁺_q`` (excludes the
        query itself).
    negatives:
        Sampled non-members, ``l⁻_q``.
    membership:
        Boolean mask over all task-graph nodes: the full community
        ``C_q(G)`` (evaluation only; includes the query).
    """

    query: int
    positives: np.ndarray
    negatives: np.ndarray
    membership: np.ndarray

    def __post_init__(self) -> None:
        self.positives = np.asarray(self.positives, dtype=np.int64)
        self.negatives = np.asarray(self.negatives, dtype=np.int64)
        self.membership = np.asarray(self.membership, dtype=bool)
        if self.query in set(self.positives.tolist()):
            raise ValueError("positives must not contain the query node")
        if not self.membership[self.query]:
            raise ValueError("query node must belong to its own community")
        overlap = set(self.positives.tolist()) & set(self.negatives.tolist())
        if overlap:
            raise ValueError(f"positive/negative samples overlap: {sorted(overlap)[:3]}")

    @property
    def num_labels(self) -> int:
        return len(self.positives) + len(self.negatives)

    def labelled_nodes(self) -> np.ndarray:
        """All labelled nodes (positives, negatives and the query itself)."""
        return np.concatenate([[self.query], self.positives, self.negatives])

    def label_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(nodes, targets) of the supervised samples, query included as
        a positive (it trivially belongs to its own community)."""
        nodes = np.concatenate([[self.query], self.positives, self.negatives])
        targets = np.concatenate([
            np.ones(1 + len(self.positives)),
            np.zeros(len(self.negatives)),
        ])
        return nodes.astype(np.int64), targets


class Task:
    """A CS task: a graph plus support and query examples.

    Parameters
    ----------
    graph:
        The task graph ``G`` (typically a 200-node BFS sample).
    support:
        Shot examples (with ground truth the model may use).
    queries:
        Held-out examples (ground truth used only for loss/evaluation).
    name:
        Label for reports.
    """

    def __init__(self, graph: Graph, support: Sequence[QueryExample],
                 queries: Sequence[QueryExample], name: str = "task",
                 use_attributes: bool = True, use_structural: bool = True):
        if not support:
            raise ValueError("a task needs at least one support example")
        self.graph = graph
        self.support: List[QueryExample] = list(support)
        self.queries: List[QueryExample] = list(queries)
        self.name = name
        # Default feature configuration.  Scenario builders override it,
        # e.g. cross-domain (MGDD) tasks disable attributes because the
        # source and target vocabularies have different dimensionalities.
        self.use_attributes = use_attributes
        self.use_structural = use_structural
        self._features: Optional[np.ndarray] = None
        self._feature_config: Optional[Tuple[bool, bool]] = None
        self._feature_version: int = -1
        self._support_features: Optional[np.ndarray] = None
        self._support_features_key: Optional[tuple] = None
        self._label_stack: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._label_stack_key: Optional[tuple] = None

    @property
    def num_shots(self) -> int:
        return len(self.support)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def features(self, use_attributes: Optional[bool] = None,
                 use_structural: Optional[bool] = None) -> np.ndarray:
        """Node feature matrix, computed lazily and cached per configuration.

        ``None`` arguments defer to the task's default configuration.
        """
        if use_attributes is None:
            use_attributes = self.use_attributes
        if use_structural is None:
            use_structural = self.use_structural
        config = (use_attributes, use_structural)
        version = getattr(self.graph, "data_version", 0)
        if self._features is None or self._feature_config != config \
                or self._feature_version != version:
            self._features = node_feature_matrix(
                self.graph, use_attributes=use_attributes,
                use_structural=use_structural)
            self._feature_config = config
            self._feature_version = version
        return self._features

    def support_features(self, use_attributes: Optional[bool] = None,
                         use_structural: Optional[bool] = None) -> np.ndarray:
        """Stacked indicator-prefixed inputs of every support view, cached.

        Row block ``i`` is the Eq. 13 encoder input ``[I_l ‖ A]`` of
        support example ``i`` — the layout consumed by the batched
        encoder (one block per support view).  The stack is step-invariant
        during meta-training, so it is cached like :meth:`features`; the
        cache keys on the feature configuration and the identity of the
        support examples, so replacing the support set invalidates it.
        """
        from ..gnn.encoder import make_support_features

        features = self.features(use_attributes, use_structural)
        key = (self._feature_config, self._feature_version,
               tuple(id(e) for e in self.support))
        if self._support_features is None or self._support_features_key != key:
            self._support_features = make_support_features(features, self.support)
            self._support_features_key = key
        return self._support_features

    def query_label_stack(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened query-set supervision, cached: ``(rows, cols, targets)``.

        Entry ``i`` supervises node ``cols[i]`` of query-set example
        ``rows[i]`` with target ``targets[i]`` — the fancy index into a
        ``(num_queries, num_nodes)`` logit matrix that lets the trainer
        score every query of the task in one gather instead of a
        per-query Python loop.  Cached on the example identities, like
        :meth:`support_features`.
        """
        key = tuple(id(e) for e in self.queries)
        if self._label_stack is None or self._label_stack_key != key:
            rows: List[np.ndarray] = []
            cols: List[np.ndarray] = []
            targets: List[np.ndarray] = []
            for position, example in enumerate(self.queries):
                nodes, target = example.label_arrays()
                rows.append(np.full(nodes.shape[0], position, dtype=np.int64))
                cols.append(nodes)
                targets.append(target)
            if not rows:
                empty = np.zeros(0, dtype=np.int64)
                self._label_stack = (empty, empty, np.zeros(0))
            else:
                self._label_stack = (np.concatenate(rows),
                                     np.concatenate(cols),
                                     np.concatenate(targets))
            self._label_stack_key = key
        return self._label_stack

    def invalidate_feature_caches(self) -> None:
        """Drop every cached feature view after the task graph mutated.

        :meth:`features` and :meth:`support_features` cache matrices
        computed from the graph's attributes and structure; after a
        :class:`~repro.graph.delta.GraphDelta` patches the graph they
        describe a state that no longer exists, and an encoder forward
        mixing stale features with repaired operators would produce a
        context that matches *neither* the pre- nor the post-delta graph.
        The engine's delta path calls this for every known task on the
        mutated graph (:meth:`repro.api.engine.CommunitySearchEngine.apply_delta`);
        the label stack is graph-independent and survives.  Tasks nobody
        calls this on are covered anyway: :meth:`features` validates its
        cache against ``graph.data_version``, which every sanctioned
        mutation bumps.
        """
        self._features = None
        self._feature_config = None
        self._feature_version = -1
        self._support_features = None
        self._support_features_key = None

    def all_examples(self) -> List[QueryExample]:
        return self.support + self.queries

    def with_shots(self, num_shots: int) -> "Task":
        """A view of this task truncated to the first ``num_shots`` shots.

        Excess support examples are *discarded* (not moved to the query
        set), matching how the paper compares 1-shot vs 5-shot.
        """
        if num_shots < 1 or num_shots > len(self.support):
            raise ValueError(
                f"cannot take {num_shots} shots from a task with {len(self.support)}"
            )
        view = Task(self.graph, self.support[:num_shots], self.queries,
                    name=f"{self.name}@{num_shots}shot",
                    use_attributes=self.use_attributes,
                    use_structural=self.use_structural)
        view._features = self._features
        view._feature_config = self._feature_config
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return (f"Task(name={self.name!r}, n={self.graph.num_nodes}, "
                f"shots={len(self.support)}, queries={len(self.queries)})")


@dataclasses.dataclass
class TaskSet:
    """Train/validation/test task collections for one scenario."""

    name: str
    train: List[Task]
    valid: List[Task]
    test: List[Task]

    def __post_init__(self) -> None:
        if not self.train or not self.test:
            raise ValueError("a TaskSet needs non-empty train and test splits")

    def summary(self) -> str:
        return (f"{self.name}: {len(self.train)} train / {len(self.valid)} valid / "
                f"{len(self.test)} test tasks")
