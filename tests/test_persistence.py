"""Tests for task-set persistence (save/load round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CGNP, CGNPConfig, MetaTrainConfig, meta_train, task_loss
from repro.tasks import (
    ScenarioConfig,
    TaskSet,
    load_task_set,
    make_scenario,
    save_task_set,
)
from repro.utils import make_rng


@pytest.fixture
def task_set(tiny_tasks):
    train, test = tiny_tasks
    return TaskSet(name="roundtrip", train=list(train), valid=[list(test)[0]],
                   test=list(test))


class TestRoundTrip:
    def test_counts_preserved(self, task_set, tmp_path):
        path = str(tmp_path / "tasks.npz")
        save_task_set(task_set, path)
        loaded = load_task_set(path)
        assert loaded.name == "roundtrip"
        assert len(loaded.train) == len(task_set.train)
        assert len(loaded.valid) == len(task_set.valid)
        assert len(loaded.test) == len(task_set.test)

    def test_graphs_identical(self, task_set, tmp_path):
        path = str(tmp_path / "tasks.npz")
        save_task_set(task_set, path)
        loaded = load_task_set(path)
        for original, restored in zip(task_set.train, loaded.train):
            np.testing.assert_array_equal(original.graph.edges,
                                          restored.graph.edges)
            np.testing.assert_allclose(original.graph.attributes,
                                       restored.graph.attributes)
            assert original.graph.num_communities == \
                restored.graph.num_communities

    def test_examples_identical(self, task_set, tmp_path):
        path = str(tmp_path / "tasks.npz")
        save_task_set(task_set, path)
        loaded = load_task_set(path)
        for original, restored in zip(task_set.test, loaded.test):
            for a, b in zip(original.support + original.queries,
                            restored.support + restored.queries):
                assert a.query == b.query
                np.testing.assert_array_equal(a.positives, b.positives)
                np.testing.assert_array_equal(a.negatives, b.negatives)
                np.testing.assert_array_equal(a.membership, b.membership)

    def test_feature_config_preserved(self, task_set, tmp_path):
        # task_set wraps the session-scoped tiny_tasks Task objects, so
        # the flag flip must be undone or every later test module sees
        # structural-only features.
        originals = [task.use_attributes for task in task_set.train]
        for task in task_set.train:
            task.use_attributes = False
        try:
            path = str(tmp_path / "tasks.npz")
            save_task_set(task_set, path)
            loaded = load_task_set(path)
            assert all(not t.use_attributes for t in loaded.train)
        finally:
            for task, original in zip(task_set.train, originals):
                task.use_attributes = original

    def test_features_match_after_reload(self, task_set, tmp_path):
        path = str(tmp_path / "tasks.npz")
        save_task_set(task_set, path)
        loaded = load_task_set(path)
        np.testing.assert_allclose(task_set.train[0].features(),
                                   loaded.train[0].features())

    def test_model_loss_identical_on_reloaded_tasks(self, task_set, tmp_path):
        """The decisive check: a model sees exactly the same task."""
        path = str(tmp_path / "tasks.npz")
        save_task_set(task_set, path)
        loaded = load_task_set(path)
        rng = make_rng(0)
        model = CGNP(task_set.train[0].features().shape[1],
                     CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                dropout=0.0), rng)
        original_loss = float(task_loss(model, task_set.train[0]).data)
        reloaded_loss = float(task_loss(model, loaded.train[0]).data)
        assert original_loss == pytest.approx(reloaded_loss, rel=1e-12)

    def test_scenario_roundtrip(self, tmp_path):
        config = ScenarioConfig(num_train_tasks=2, num_valid_tasks=1,
                                num_test_tasks=1, subgraph_nodes=40,
                                num_support=2, num_query=2, seed=3)
        tasks = make_scenario("sgsc", "cora", config, scale=0.2)
        path = str(tmp_path / "scenario.npz")
        save_task_set(tasks, path)
        loaded = load_task_set(path)
        assert loaded.name == tasks.name
        assert loaded.train[0].graph.parent_nodes is not None
