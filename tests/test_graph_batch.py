"""Block-diagonal ``GraphBatch`` collation and every batched path built on it.

The contract under test: batching is a *layout* change, never a *numerics*
change.  Encoding k graphs through one block-diagonal forward, training on
task mini-batches, bulk-attaching engine sessions and the baselines'
collated steps must all agree with the per-graph / per-query reference
paths to float tolerance (1e-9), including ragged batches (different graph
sizes, different support counts).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import CommunitySearchEngine
from repro.baselines.common import batch_loss, example_loss, predict_task_proba
from repro.core import CGNP, CGNPConfig, make_aggregator, task_batch_loss, task_loss
from repro.gnn import (GNNEncoder, GNNNodeClassifier, graph_ops,
                       make_query_features, make_support_features)
from repro.gnn.conv import GRAPH_OPS_KEY
from repro.graph import Graph, GraphBatch, attributed_community_graph
from repro.nn import Tensor
from repro.nn.loss import bce_with_logits
from repro.nn.tensor import no_grad
from repro.tasks import TaskSampler
from repro.utils import make_rng

ATOL = 1e-9


def random_graph(num_nodes: int, seed: int) -> Graph:
    """A connected-ish random graph (ring + random chords)."""
    rng = make_rng(seed)
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    extra = max(num_nodes // 2, 1)
    chords = rng.integers(0, num_nodes, size=(extra, 2))
    edges.extend((int(u), int(v)) for u, v in chords if u != v)
    return Graph(num_nodes, edges, name=f"rand{num_nodes}-{seed}")


@pytest.fixture(scope="module")
def ragged_tasks():
    """Tasks of *different* graph sizes and support counts."""
    data = attributed_community_graph(
        num_nodes=150, num_communities=5, avg_degree=8.0, mixing=0.12,
        num_attributes=16, rng=make_rng(11), name="batch-fixture")
    tasks = []
    for i, (sub, shots) in enumerate([(50, 1), (70, 3), (60, 2)]):
        sampler = TaskSampler(data, subgraph_nodes=sub, num_support=shots,
                              num_query=4, num_positive=3, num_negative=6)
        tasks.append(sampler.sample_task(make_rng(100 + i), name=f"rag-{i}"))
    return tasks


def tiny_model(tasks, conv="gcn", decoder="ip", aggregator="sum", seed=3):
    dim = tasks[0].features().shape[1]
    model = CGNP(dim, CGNPConfig(hidden_dim=8, num_layers=2, conv=conv,
                                 decoder=decoder, aggregator=aggregator,
                                 dropout=0.0), make_rng(seed))
    model.eval()
    return model


class TestGraphBatchStructure:
    def test_offsets_sizes_and_node_index(self):
        graphs = [random_graph(n, s) for n, s in [(5, 0), (9, 1), (3, 2)]]
        batch = GraphBatch(graphs)
        assert batch.num_graphs == 3
        assert batch.num_nodes == 17
        np.testing.assert_array_equal(batch.sizes, [5, 9, 3])
        np.testing.assert_array_equal(batch.offsets, [0, 5, 14, 17])
        np.testing.assert_array_equal(
            batch.node_graph_index, [0] * 5 + [1] * 9 + [2] * 3)

    def test_adjacency_is_block_diagonal(self):
        graphs = [random_graph(6, 3), random_graph(4, 4)]
        batch = GraphBatch(graphs)
        dense = batch.adjacency.toarray()
        np.testing.assert_array_equal(dense[:6, :6], graphs[0].adjacency.toarray())
        np.testing.assert_array_equal(dense[6:, 6:], graphs[1].adjacency.toarray())
        assert not dense[:6, 6:].any(), "no edges may cross blocks"
        assert not dense[6:, :6].any()

    def test_directed_edges_are_offset(self):
        graphs = [random_graph(5, 5), random_graph(7, 6)]
        batch = GraphBatch(graphs)
        src, dst = batch.directed_edges()
        s0, d0 = graphs[0].directed_edges()
        s1, d1 = graphs[1].directed_edges()
        np.testing.assert_array_equal(src, np.concatenate([s0, s1 + 5]))
        np.testing.assert_array_equal(dst, np.concatenate([d0, d1 + 5]))

    def test_replicate(self):
        g = random_graph(4, 7)
        batch = GraphBatch.replicate(g, 3)
        assert batch.num_graphs == 3 and batch.num_nodes == 12
        assert all(member is g for member in batch)
        with pytest.raises(ValueError):
            GraphBatch.replicate(g, 0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            GraphBatch([])

    def test_global_ids_and_blocks(self):
        batch = GraphBatch([random_graph(5, 8), random_graph(6, 9)])
        np.testing.assert_array_equal(batch.global_ids(1, [0, 5]), [5, 10])
        assert batch.block(1) == (5, 11)
        with pytest.raises(ValueError):
            batch.global_ids(0, [5])        # out of member range
        with pytest.raises(IndexError):
            batch.global_ids(2, [0])

    def test_split_scatter_roundtrip(self):
        batch = GraphBatch([random_graph(4, 10), random_graph(7, 11)])
        stacked = make_rng(0).normal(size=(batch.num_nodes, 3))
        chunks = batch.split_rows(stacked)
        assert [len(c) for c in chunks] == [4, 7]
        np.testing.assert_array_equal(batch.scatter_rows(chunks), stacked)
        with pytest.raises(ValueError):
            batch.split_rows(stacked[:-1])
        with pytest.raises(ValueError):
            batch.scatter_rows(chunks[:1])

    def test_degrees_concatenate(self):
        graphs = [random_graph(5, 12), random_graph(8, 13)]
        batch = GraphBatch(graphs)
        np.testing.assert_array_equal(
            batch.degrees(),
            np.concatenate([graphs[0].degrees(), graphs[1].degrees()]))


class TestOpsCache:
    def test_graph_ops_memoised_per_instance(self):
        g = random_graph(6, 20)
        assert graph_ops(g) is graph_ops(g)

    def test_batch_ops_do_not_alias_member_ops(self):
        g = random_graph(6, 21)
        batch = GraphBatch.replicate(g, 2)
        single = graph_ops(g)
        batched = graph_ops(batch)
        assert single is not batched
        assert batched.num_nodes == 2 * single.num_nodes
        # The member graph's cache must be untouched by the batch build.
        assert graph_ops(g) is single

    def test_invalidate_cached_ops(self):
        g = random_graph(6, 22)
        first = graph_ops(g)
        g.invalidate_cached_ops(GRAPH_OPS_KEY)
        assert graph_ops(g) is not first
        second = graph_ops(g)
        g.invalidate_cached_ops()           # clear-all form
        assert graph_ops(g) is not second

    def test_invalidate_unknown_key_is_noop(self):
        g = random_graph(4, 23)
        g.invalidate_cached_ops("never-cached")
        first = graph_ops(g)
        g.invalidate_cached_ops("still-not-cached")
        assert graph_ops(g) is first


class TestBatchedEncoderEquivalence:
    @pytest.mark.parametrize("conv", ["gcn", "gat", "sage"])
    def test_block_diagonal_forward_matches_per_graph(self, conv):
        graphs = [random_graph(n, 30 + n) for n in (5, 11, 8)]
        encoder = GNNEncoder(3, 6, 2, conv, 0.0, make_rng(1))
        encoder.eval()
        features = [make_rng(40 + i).normal(size=(g.num_nodes, 3))
                    for i, g in enumerate(graphs)]
        batch = GraphBatch(graphs)
        with no_grad():
            batched = encoder(Tensor(np.concatenate(features)), batch).data
            singles = [encoder(Tensor(x), g).data
                       for x, g in zip(features, graphs)]
        np.testing.assert_allclose(batched, np.concatenate(singles), atol=ATOL)

    @given(sizes=st.lists(st.integers(3, 12), min_size=1, max_size=4),
           seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_batched_equals_concatenated(self, sizes, seed):
        """For arbitrary ragged batches the block-diagonal forward equals
        the concatenation of per-graph forwards."""
        graphs = [random_graph(n, seed + i) for i, n in enumerate(sizes)]
        encoder = GNNEncoder(2, 4, 2, "gcn", 0.0, make_rng(seed))
        encoder.eval()
        features = [make_rng(seed + 50 + i).normal(size=(g.num_nodes, 2))
                    for i, g in enumerate(graphs)]
        with no_grad():
            batched = encoder(Tensor(np.concatenate(features)),
                              GraphBatch(graphs)).data
            singles = [encoder(Tensor(x), g).data
                       for x, g in zip(features, graphs)]
        np.testing.assert_allclose(batched, np.concatenate(singles), atol=ATOL)

    def test_make_support_features_matches_per_view(self, ragged_tasks):
        task = ragged_tasks[1]
        features = task.features()
        stacked = make_support_features(features, task.support)
        per_view = np.concatenate(
            [make_query_features(features, e.query, e.positives)
             for e in task.support])
        np.testing.assert_array_equal(stacked, per_view)


class TestAggregatorStackedViews:
    @pytest.mark.parametrize("name", ["sum", "mean", "attention"])
    def test_stacked_tensor_matches_view_list(self, name):
        rng = make_rng(2)
        aggregator = make_aggregator(name, 5, make_rng(0))
        views = [Tensor(rng.normal(size=(7, 5))) for _ in range(3)]
        stacked = Tensor(np.stack([v.data for v in views]))
        np.testing.assert_allclose(aggregator(views).data,
                                   aggregator(stacked).data, atol=ATOL)

    @pytest.mark.parametrize("name", ["sum", "mean", "attention"])
    def test_single_view(self, name):
        aggregator = make_aggregator(name, 4, make_rng(0))
        view = make_rng(3).normal(size=(1, 6, 4))
        np.testing.assert_allclose(aggregator(Tensor(view)).data, view[0],
                                   atol=ATOL)

    def test_bad_shapes_rejected(self):
        aggregator = make_aggregator("sum", 4, make_rng(0))
        with pytest.raises(ValueError):
            aggregator([])
        with pytest.raises(ValueError):
            aggregator(Tensor(np.zeros((3, 4))))      # not (k, n, d)
        with pytest.raises(ValueError):
            aggregator([Tensor(np.zeros((3, 4))), Tensor(np.zeros((2, 4)))])


class TestContextBatchEquivalence:
    @pytest.mark.parametrize("aggregator", ["sum", "mean", "attention"])
    def test_context_batch_matches_per_view_reference(self, ragged_tasks,
                                                      aggregator):
        model = tiny_model(ragged_tasks, aggregator=aggregator)
        with no_grad():
            contexts = model.context_batch(ragged_tasks)
            for task, context in zip(ragged_tasks, contexts):
                views = [model.encode_view(task, e) for e in task.support]
                reference = model.aggregator(views)
                np.testing.assert_allclose(context.data, reference.data,
                                           atol=ATOL)

    def test_support_overrides(self, ragged_tasks):
        model = tiny_model(ragged_tasks)
        task = ragged_tasks[1]
        override = task.support[:1]
        with no_grad():
            batched = model.context_batch([task], supports=[override])[0]
            reference = model.aggregator(
                [model.encode_view(task, override[0])])
        np.testing.assert_allclose(batched.data, reference.data, atol=ATOL)
        with pytest.raises(ValueError):
            model.context_batch([task], supports=[])
        with pytest.raises(ValueError):
            model.context_batch([task], supports=[[]])
        with pytest.raises(ValueError):
            model.context_batch([])


def reference_task_loss(model, task):
    """The seed's per-query task loss (kept as the equivalence oracle)."""
    context = model.context(task)
    total = None
    for example in task.queries:
        logits = model.query_logits(context, example.query, task.graph)
        nodes, targets = example.label_arrays()
        loss = bce_with_logits(logits.take_rows(nodes), targets, reduction="sum")
        total = loss if total is None else total + loss
    num_labels = sum(1 + e.num_labels for e in task.queries)
    return total * (1.0 / num_labels)


class TestBatchedLossEquivalence:
    @pytest.mark.parametrize("decoder", ["ip", "mlp", "gnn"])
    def test_task_loss_matches_per_query_reference(self, ragged_tasks, decoder):
        model = tiny_model(ragged_tasks, decoder=decoder)
        with no_grad():
            for task in ragged_tasks:
                vectorised = float(task_loss(model, task).data)
                reference = float(reference_task_loss(model, task).data)
                assert vectorised == pytest.approx(reference, abs=ATOL)

    @pytest.mark.parametrize("decoder", ["ip", "mlp", "gnn"])
    def test_task_batch_loss_matches_mean_of_task_losses(self, ragged_tasks,
                                                         decoder):
        model = tiny_model(ragged_tasks, decoder=decoder)
        with no_grad():
            batched = float(task_batch_loss(model, ragged_tasks).data)
            singles = [float(reference_task_loss(model, t).data)
                       for t in ragged_tasks]
        assert batched == pytest.approx(float(np.mean(singles)), abs=ATOL)

    def test_task_batch_loss_gradients_match_accumulated_singles(self,
                                                                 ragged_tasks):
        """One mini-batch backward equals the mean of per-task backwards."""
        model = tiny_model(ragged_tasks)
        model.train()
        task_batch_loss(model, ragged_tasks).backward()
        batched_grads = {name: p.grad.copy()
                         for name, p in model.named_parameters()}
        model.zero_grad()
        for task in ragged_tasks:
            (reference_task_loss(model, task)
             * (1.0 / len(ragged_tasks))).backward()
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(batched_grads[name], parameter.grad,
                                       atol=1e-8, err_msg=name)

    def test_empty_queries_rejected(self, ragged_tasks):
        model = tiny_model(ragged_tasks)
        task = ragged_tasks[0]
        stripped = type(task)(task.graph, task.support, [], name="no-queries")
        with pytest.raises(ValueError):
            task_loss(model, stripped)
        with pytest.raises(ValueError):
            task_batch_loss(model, [stripped])
        with pytest.raises(ValueError):
            task_batch_loss(model, [])


class TestEngineAttachMany:
    def test_bulk_attach_matches_sequential_attach(self, ragged_tasks):
        model = tiny_model(ragged_tasks)
        bulk = CommunitySearchEngine(model).attach_many(ragged_tasks)
        sequential = CommunitySearchEngine(model)
        for task in ragged_tasks:
            sequential.attach(task)
        for task in ragged_tasks:
            queries = [e.query for e in task.queries]
            np.testing.assert_allclose(
                bulk.predict_proba(queries, task=task),
                sequential.predict_proba(queries, task=task), atol=ATOL)
        assert bulk.active_task is ragged_tasks[-1]
        assert bulk.stats().contexts_encoded == len(ragged_tasks)

    def test_bulk_attach_reuses_cached_contexts(self, ragged_tasks):
        model = tiny_model(ragged_tasks)
        engine = CommunitySearchEngine(model).attach(ragged_tasks[0])
        engine.attach_many(ragged_tasks)
        stats = engine.stats()
        assert stats.contexts_encoded == len(ragged_tasks)
        assert stats.context_cache_hits == 1
        engine.attach_many(ragged_tasks, refresh=True)
        assert engine.stats().contexts_encoded == 2 * len(ragged_tasks)

    def test_bulk_attach_validates(self, ragged_tasks):
        model = tiny_model(ragged_tasks)
        engine = CommunitySearchEngine(model)
        with pytest.raises(ValueError):
            engine.attach_many([])
        with pytest.raises(TypeError):
            engine.attach_many([ragged_tasks[0], "not a task"])


class TestBaselineBatchedPaths:
    def test_batch_loss_matches_mean_example_loss(self, ragged_tasks):
        dim = ragged_tasks[0].features().shape[1]
        model = GNNNodeClassifier(dim + 1, 8, 2, "gcn", 0.0, make_rng(4))
        model.eval()
        pairs = [(task, example) for task in ragged_tasks
                 for example in task.all_examples()]
        with no_grad():
            batched = float(batch_loss(model, pairs).data)
            singles = [float(example_loss(model, t, e).data) for t, e in pairs]
        assert batched == pytest.approx(float(np.mean(singles)), abs=ATOL)

    def test_predict_task_proba_matches_per_example(self, ragged_tasks):
        from repro.baselines.common import predict_example_proba

        dim = ragged_tasks[0].features().shape[1]
        model = GNNNodeClassifier(dim + 1, 8, 2, "gat", 0.0, make_rng(5))
        task = ragged_tasks[2]
        rows = predict_task_proba(model, task, task.queries)
        assert len(rows) == len(task.queries)
        for row, example in zip(rows, task.queries):
            np.testing.assert_allclose(
                row, predict_example_proba(model, task, example), atol=ATOL)
        assert predict_task_proba(model, task, []) == []


class TestMiniBatchTraining:
    def test_task_batch_size_trains_and_matches_shapes(self, ragged_tasks):
        from repro.core import MetaTrainConfig, meta_train

        model = tiny_model(ragged_tasks)
        state = meta_train(model, ragged_tasks,
                           MetaTrainConfig(epochs=4, learning_rate=2e-3,
                                           task_batch_size=2), make_rng(6))
        assert len(state.epoch_losses) == 4
        assert all(np.isfinite(loss) for loss in state.epoch_losses)
        assert state.epoch_losses[-1] < state.epoch_losses[0]

    def test_invalid_batch_size_rejected(self):
        from repro.core import MetaTrainConfig

        with pytest.raises(ValueError):
            MetaTrainConfig(task_batch_size=0)
