"""CGNP meta-training — Algorithm 1 of the paper, mini-batched over tasks.

For each epoch: shuffle the training tasks and split them into mini-batches
of ``task_batch_size`` tasks; for each mini-batch, encode **all** support
views of **all** tasks with one block-diagonal encoder forward
(:meth:`CGNP.context_batch`), compute every query's BCE loss (Eq. 19
restricted to the sampled ground truth) through one batched decoder pass,
and take one optimiser step per mini-batch.  ``task_batch_size=1``
recovers the paper's one-step-per-task schedule (through the same code
path, still with view-batched encoding).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..graph import GraphBatch
from ..nn.backend import resolve_index_dtype
from ..nn.loss import bce_with_logits
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor
from ..tasks.task import Task
from .model import CGNP

__all__ = ["MetaTrainConfig", "TrainState", "task_loss", "task_batch_loss",
           "meta_train"]


@dataclasses.dataclass
class MetaTrainConfig:
    """Training hyper-parameters (paper: Adam, lr 5e-4, 200 epochs)."""

    epochs: int = 200
    learning_rate: float = 5e-4
    weight_decay: float = 0.0
    grad_clip: Optional[float] = 5.0
    patience: Optional[int] = None   # early stopping on validation loss
    log_every: int = 0               # 0 → silent
    task_batch_size: int = 1         # tasks per optimiser step (episodic mini-batch)

    def __post_init__(self) -> None:
        if self.task_batch_size < 1:
            raise ValueError("task_batch_size must be >= 1")


@dataclasses.dataclass
class TrainState:
    """Outcome of a meta-training run."""

    epoch_losses: List[float]
    best_epoch: int
    stopped_early: bool


def _labelled_loss(logits: Tensor, task: Task) -> Tensor:
    """Eq. 19's inner sums from a ``(B, n)`` query-logit matrix."""
    rows, cols, targets = task.query_label_stack()
    picked = logits[(rows, cols)]
    loss = bce_with_logits(picked, targets, reduction="sum")
    # Normalise by the number of supervised scalars so tasks with different
    # query counts weigh comparably in the epoch loss.
    return loss * (1.0 / targets.shape[0])


def task_loss(model: CGNP, task: Task) -> Tensor:
    """Negative log-likelihood of the task's query set given its support set.

    Implements the inner sums of Eq. 19 fully vectorised: the context is
    built from the support set only (one batched encoder forward over the
    support views), all query logits come from a single batched decoder
    pass, and the supervised scalars are gathered with one fancy index.
    """
    if not task.queries:
        raise ValueError(f"task {task.name!r} has no query examples to train on")
    context = model.context(task)
    queries = np.asarray([e.query for e in task.queries],
                         dtype=resolve_index_dtype())
    logits = model.query_logits_batch(context, queries, task.graph)
    return _labelled_loss(logits, task)


def task_batch_loss(model: CGNP, tasks: Sequence[Task]) -> Tensor:
    """Mean task loss of a task mini-batch with batched encode AND decode.

    All support views of all tasks are encoded in one block-diagonal
    forward (:meth:`CGNP.context_batch`); the per-task contexts are then
    concatenated and pushed through the decoder's context transform once
    over a one-block-per-task :class:`~repro.graph.GraphBatch`, so the
    MLP/GNN decoders also run a single batched pass.  Only the final
    ragged query gathers remain per task.
    """
    tasks = list(tasks)
    if not tasks:
        raise ValueError("task_batch_loss requires at least one task")
    for task in tasks:
        if not task.queries:
            raise ValueError(
                f"task {task.name!r} has no query examples to train on")
    contexts, offsets = model.context_concat(tasks)
    graph_batch = GraphBatch([task.graph for task in tasks])
    transformed = model.decoder.transform(contexts, graph_batch)

    total: Optional[Tensor] = None
    for index, task in enumerate(tasks):
        block = transformed[int(offsets[index]):int(offsets[index + 1])]
        queries = np.asarray([e.query for e in task.queries],
                             dtype=resolve_index_dtype())
        logits = block.take_rows(queries).matmul(block.transpose())  # (B_t, n_t)
        loss = _labelled_loss(logits, task)
        total = loss if total is None else total + loss
    return total * (1.0 / len(tasks))


def meta_train(model: CGNP, train_tasks: Sequence[Task],
               config: MetaTrainConfig, rng: np.random.Generator,
               valid_tasks: Optional[Sequence[Task]] = None,
               callback: Optional[Callable[[int, float], None]] = None) -> TrainState:
    """Run Algorithm 1 with episodic task mini-batches.

    Parameters
    ----------
    model:
        The CGNP meta model (updated in place).
    train_tasks:
        Training task set 𝒟.
    config:
        Optimiser and schedule settings; ``config.task_batch_size`` tasks
        share one optimiser step.
    rng:
        Generator for task shuffling.
    valid_tasks:
        Optional validation tasks for early stopping (lowest validation
        loss wins; the best parameters are restored on exit).
    callback:
        Optional ``f(epoch, mean_loss)`` hook (used by the harness for
        logging).
    """
    if not train_tasks:
        raise ValueError("meta_train requires at least one training task")
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    model.train()

    batch_size = config.task_batch_size
    order = np.arange(len(train_tasks))
    epoch_losses: List[float] = []
    best_valid = np.inf
    best_state = None
    best_epoch = 0
    bad_epochs = 0
    stopped_early = False

    for epoch in range(config.epochs):
        rng.shuffle(order)
        losses = []
        weights = []
        for start in range(0, len(order), batch_size):
            chunk = [train_tasks[int(i)] for i in order[start:start + batch_size]]
            optimizer.zero_grad()
            loss = task_batch_loss(model, chunk)
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(model.parameters(), config.grad_clip)
            optimizer.step()
            losses.append(float(loss.data))
            weights.append(len(chunk))
        # Weight by chunk size so a ragged final mini-batch does not skew
        # the epoch mean (each loss is already a per-task mean).
        mean_loss = float(np.average(losses, weights=weights))
        epoch_losses.append(mean_loss)
        if callback is not None:
            callback(epoch, mean_loss)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            print(f"[meta-train] epoch {epoch + 1}/{config.epochs} "
                  f"loss {mean_loss:.4f}")

        if valid_tasks and config.patience is not None:
            valid_loss = evaluate_loss(model, valid_tasks,
                                       task_batch_size=batch_size)
            if valid_loss < best_valid - 1e-6:
                best_valid = valid_loss
                best_state = model.state_dict()
                best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= config.patience:
                    stopped_early = True
                    break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return TrainState(epoch_losses=epoch_losses,
                      best_epoch=best_epoch if best_state is not None
                      else len(epoch_losses) - 1,
                      stopped_early=stopped_early)


def evaluate_loss(model: CGNP, tasks: Sequence[Task],
                  task_batch_size: int = 1) -> float:
    """Mean task loss without gradient tracking (for early stopping)."""
    from ..nn.tensor import no_grad

    model.eval()
    tasks = list(tasks)
    total = 0.0
    with no_grad():
        for start in range(0, len(tasks), max(task_batch_size, 1)):
            chunk = tasks[start:start + max(task_batch_size, 1)]
            total += float(task_batch_loss(model, chunk).data) * len(chunk)
    model.train()
    return total / len(tasks)
