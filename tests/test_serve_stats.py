"""Tests for ``repro.serve.stats``: histograms, ServeStats, Prometheus text."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.engine import EngineStats
from repro.serve import (BATCH_SIZE_BUCKETS, LATENCY_BUCKETS, Histogram,
                         ServeStats, batch_size_histogram, latency_histogram)


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([])

    def test_observe_counts_and_moments(self):
        hist = Histogram([1.0, 10.0, 100.0])
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == pytest.approx(560.5)
        assert hist.mean == pytest.approx(112.1)
        assert hist.min_observed == 0.5
        assert hist.max_observed == 500.0
        assert hist.counts == [1, 2, 1, 1]   # trailing +Inf bucket

    def test_bucket_bounds_are_le_inclusive(self):
        """Prometheus ``le`` semantics: a value ON a bound joins that bucket."""
        hist = Histogram([1.0, 2.0])
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.counts == [1, 1, 0]

    def test_single_value_reported_at_every_quantile(self):
        hist = latency_histogram()
        hist.observe(0.0123)
        for q in (0, 1, 50, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(0.0123)

    def test_percentile_monotone_in_q(self):
        rng = np.random.default_rng(0)
        hist = latency_histogram()
        for value in rng.exponential(0.01, size=500):
            hist.observe(value)
        quantiles = [hist.percentile(q) for q in range(0, 101, 5)]
        assert all(b >= a for a, b in zip(quantiles, quantiles[1:]))

    def test_percentile_tracks_exact_percentile(self):
        """Interpolated estimates stay within a bucket of the exact value."""
        rng = np.random.default_rng(1)
        values = rng.exponential(0.02, size=2000)
        hist = latency_histogram()
        for value in values:
            hist.observe(value)
        for q in (50, 95, 99):
            exact = float(np.percentile(values, q))
            estimate = hist.percentile(q)
            # Geometric buckets with factor 1.5: the estimate lives in the
            # same bucket as the exact quantile, so at most 50% off.
            assert estimate == pytest.approx(exact, rel=0.5)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            latency_histogram().percentile(101)

    def test_empty_histogram(self):
        hist = latency_histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram([1.0])
        hist.observe(123.0)
        assert hist.percentile(99) == 123.0

    def test_copy_is_isolated(self):
        hist = latency_histogram()
        hist.observe(0.5)
        clone = hist.copy()
        clone.observe(5.0)
        assert hist.count == 1 and clone.count == 2

    def test_as_dict_buckets_cumulative(self):
        hist = batch_size_histogram()
        for value in (1, 3, 3, 9, 10_000):
            hist.observe(value)
        data = hist.as_dict()
        cumulative = list(data["buckets"].values())
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert data["buckets"]["+Inf"] == data["count"] == 5
        json.dumps(data)

    def test_default_bucket_layouts(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert len(LATENCY_BUCKETS) == 43
        assert BATCH_SIZE_BUCKETS[0] == 1.0


class TestServeStats:
    def make_stats(self) -> ServeStats:
        stats = ServeStats(submitted=10, completed=7, rejected=1, cancelled=1,
                           failed=1, ticks=5, empty_ticks=2,
                           queue_depth_high_water=4)
        for value in (0.001, 0.002, 0.04):
            stats.queue_wait.observe(value)
            stats.request_latency.observe(value * 2)
        stats.tick_batch_requests.observe(3)
        return stats

    def test_as_dict_round_trips_through_json(self):
        stats = self.make_stats()
        # numpy scalars sneaking into counters must not break json.dumps.
        stats.queries_served = np.int64(42)
        stats.decode_seconds = np.float64(0.5)
        data = json.loads(json.dumps(stats.as_dict()))
        assert data["queries_served"] == 42
        assert data["submitted"] == 10
        assert data["request_latency"]["count"] == 3

    def test_with_engine_merges_and_isolates(self):
        stats = self.make_stats()
        engine_stats = EngineStats(queries_served=99, decode_calls=3,
                                   backend="numpy")
        merged = stats.with_engine(engine_stats)
        assert merged.queries_served == 99
        assert merged.decode_calls == 3
        assert merged.backend == "numpy"
        assert merged.submitted == 10
        # Histograms are copies: mutating the snapshot leaves the live
        # stats untouched.
        merged.queue_wait.observe(9.0)
        assert stats.queue_wait.count == 3

    def test_inherits_engine_derived_metrics(self):
        stats = ServeStats(queries_served=10, decode_seconds=2.0)
        assert stats.queries_per_second == pytest.approx(5.0)


class TestMetricsText:
    """``metrics_text`` must parse as Prometheus text exposition format."""

    def parse(self, text: str):
        """Minimal Prometheus text-format parser: returns (types, samples)."""
        assert text.endswith("\n")
        types, helps, samples = {}, {}, []
        for line in text.splitlines():
            assert line == line.strip() and line
            if line.startswith("# HELP "):
                name, help_text = line[len("# HELP "):].split(" ", 1)
                helps[name] = help_text
                continue
            if line.startswith("# TYPE "):
                name, kind = line[len("# TYPE "):].split(" ")
                assert kind in ("counter", "gauge", "histogram")
                types[name] = kind
                continue
            assert not line.startswith("#")
            body, value = line.rsplit(" ", 1)
            name = body.split("{", 1)[0]
            labels = {}
            if "{" in body:
                inner = body[body.index("{") + 1:body.rindex("}")]
                for pair in inner.split(","):
                    key, raw = pair.split("=", 1)
                    assert raw.startswith('"') and raw.endswith('"')
                    labels[key] = raw[1:-1]
            samples.append((name, labels, float(value)))
        return types, helps, samples

    def sample_stats(self) -> ServeStats:
        stats = ServeStats(submitted=5, completed=4, rejected=1, ticks=3,
                           empty_ticks=1, queue_depth_high_water=2,
                           queries_served=8, batches_served=4,
                           decode_calls=2, decode_seconds=0.01,
                           backend="numpy")
        for value in (0.001, 0.003, 0.2):
            stats.queue_wait.observe(value)
            stats.request_latency.observe(value)
        stats.tick_batch_requests.observe(2)
        stats.tick_batch_requests.observe(2)
        return stats

    def test_every_sample_is_declared(self):
        types, helps, samples = self.parse(self.sample_stats().metrics_text())
        assert types.keys() == helps.keys()
        for name, _labels, _value in samples:
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in types:
                    base = name[:-len(suffix)]
            assert base in types, f"undeclared metric {name}"
            if base != name:
                assert types[base] == "histogram"

    def test_counters_follow_naming_convention(self):
        types, _helps, _samples = self.parse(
            self.sample_stats().metrics_text())
        for name, kind in types.items():
            if kind == "counter":
                assert name.endswith("_total"), name

    def test_histogram_buckets_cumulative_and_consistent(self):
        types, _helps, samples = self.parse(self.sample_stats().metrics_text())
        histograms = [name for name, kind in types.items()
                      if kind == "histogram"]
        assert "repro_serve_request_latency_seconds" in histograms
        for name in histograms:
            buckets = [(labels["le"], value) for metric, labels, value
                       in samples if metric == f"{name}_bucket"]
            count = next(value for metric, _labels, value in samples
                         if metric == f"{name}_count")
            assert buckets[-1][0] == "+Inf"
            assert buckets[-1][1] == count
            values = [value for _le, value in buckets]
            assert all(b >= a for a, b in zip(values, values[1:]))
            bounds = [float(le) for le, _value in buckets[:-1]]
            assert bounds == sorted(bounds)

    def test_outcome_labels_and_backend_info(self):
        _types, _helps, samples = self.parse(self.sample_stats().metrics_text())
        outcomes = {labels["outcome"]: value for name, labels, value in samples
                    if name == "repro_serve_requests_total"}
        assert outcomes == {"completed": 4.0, "rejected": 1.0,
                            "cancelled": 0.0, "failed": 0.0}
        backend = [labels for name, labels, _value in samples
                   if name == "repro_engine_backend_info"]
        assert backend == [{"backend": "numpy"}]
