"""Graph convolution layers: GCN, GAT and GraphSAGE.

The paper investigates these three as CGNP's encoder (section VII-E,
Table IV) and uses GAT by default.  Each layer follows the original
formulation:

* **GCNConv** (Kipf & Welling 2017): ``H' = D̂^{-1/2} Â D̂^{-1/2} H W``.
* **GATConv** (Velickovic et al. 2018): attention logits
  ``e_ij = LeakyReLU(a_l·Wh_i + a_r·Wh_j)`` normalised by softmax over
  each node's in-edges (self-loops included), multi-head by averaging.
* **SAGEConv** (Hamilton et al. 2017), mean aggregator:
  ``H' = [H ‖ D^{-1} A H] W``.

Graph-dependent operators (normalised adjacency + its pre-transposed
backward operator, edge lists with self-loops) are computed once per
graph — or per :class:`~repro.graph.batch.GraphBatch` — **per element
and index dtype**, and memoised through the explicit
:meth:`~repro.graph.graph.OpsCache.cached_ops` API by :func:`graph_ops`
under the ``(op, elem_dtype, index_dtype)`` key convention
(``"gnn.message_passing.float32.int32"`` and ``".float64.int64"``
variants coexist on one graph).  A block-diagonal batch adjacency normalises blockwise
(no edges cross blocks, self-loops are per node), so the same operators
drive single-graph and batched forwards without aliasing.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..graph import Graph, GraphBatch, ShardedGraph, stack_csr
from ..nn import functional as F
from ..nn import init
from ..nn.backend import get_backend, resolve_dtype, resolve_index_dtype
from ..nn.module import Module, Parameter
from ..nn.sparse import normalized_adjacency, row_normalized_adjacency, spmm
from ..nn.tensor import Tensor

__all__ = ["GraphOps", "GraphLike", "graph_ops",
           "GraphShardOps", "graph_shard_ops",
           "GCNConv", "GATConv", "SAGEConv", "CONV_TYPES"]

#: Anything the convolutions can message-pass over: a single graph or a
#: block-diagonal collation of several.
GraphLike = Union[Graph, GraphBatch]

#: Cache-key *family* under which :func:`graph_ops` memoises operators;
#: the concrete key appends the element- and index-dtype names per the
#: ``(op, elem_dtype, index_dtype)`` convention (see
#: :class:`~repro.graph.graph.OpsCache`), and
#: ``invalidate_cached_ops(GRAPH_OPS_KEY)`` drops every dtype variant.
GRAPH_OPS_KEY = "gnn.message_passing"


@dataclasses.dataclass
class GraphOps:
    """Cached message-passing operators of one graph (or graph batch),
    all materialised at one element dtype (``dtype``) and one index
    dtype (``index_dtype``)."""

    norm_adj: sp.csr_matrix          # GCN: D̂^{-1/2}(A+I)D̂^{-1/2}
    norm_adj_t: sp.csr_matrix        # its backward operator (symmetric ⇒ alias)
    row_norm_adj: sp.csr_matrix      # SAGE mean aggregator: D^{-1}A
    row_norm_adj_t: sp.csr_matrix    # (D^{-1}A)ᵀ, pre-converted for backward
    edge_src: np.ndarray             # GAT: directed edges + self-loops
    edge_dst: np.ndarray
    num_nodes: int
    dtype: np.dtype
    index_dtype: np.dtype


def _build_graph_ops(graph: GraphLike, dtype: np.dtype,
                     index_dtype: np.dtype) -> GraphOps:
    if isinstance(graph, GraphBatch):
        return _compose_batch_ops(graph, dtype, index_dtype)
    src, dst = graph.directed_edges()
    loops = np.arange(graph.num_nodes, dtype=index_dtype)
    norm_adj = normalized_adjacency(graph.adjacency, dtype=dtype,
                                    index_dtype=index_dtype)
    row_norm_adj = row_normalized_adjacency(graph.adjacency, dtype=dtype,
                                            index_dtype=index_dtype)
    return GraphOps(
        norm_adj=norm_adj,
        # The symmetric normalisation is its own transpose, so the
        # backward operator aliases the forward one.
        norm_adj_t=norm_adj,
        row_norm_adj=row_norm_adj,
        row_norm_adj_t=get_backend().to_operator(
            row_norm_adj.T, dtype=dtype, index_dtype=index_dtype),
        edge_src=np.concatenate([src, loops]).astype(index_dtype, copy=False),
        edge_dst=np.concatenate([dst, loops]).astype(index_dtype, copy=False),
        num_nodes=graph.num_nodes,
        dtype=dtype,
        index_dtype=index_dtype,
    )


def _compose_batch_ops(batch: GraphBatch, dtype: np.dtype,
                       index_dtype: np.dtype) -> GraphOps:
    """Assemble a batch's operators from its members' cached operators.

    Normalisation is blockwise (no edges cross blocks, self-loops are per
    node), so the block-diagonal of the members' normalised adjacencies
    *is* the normalised block-diagonal adjacency — each member graph pays
    for degree normalisation once, ever, no matter how many collations it
    appears in (replicated support views share one member entry).  The
    same holds for the transposed backward operators (a block-diagonal
    transpose is the block-diagonal of the transposes).
    """
    member_ops = [graph_ops(g, dtype, index_dtype) for g in batch.graphs]
    # Python-int offsets keep the members' index width (int32 stays int32);
    # the stacks take the explicit width so the cache key never lies about
    # the operator it labels, whatever the ambient policy is.
    offsets = [int(offset) for offset in batch.offsets[:-1]]
    norm_adj = stack_csr([ops.norm_adj for ops in member_ops],
                         index_dtype=index_dtype)
    return GraphOps(
        norm_adj=norm_adj,
        norm_adj_t=norm_adj,
        row_norm_adj=stack_csr([ops.row_norm_adj for ops in member_ops],
                               index_dtype=index_dtype),
        row_norm_adj_t=stack_csr([ops.row_norm_adj_t for ops in member_ops],
                                 index_dtype=index_dtype),
        edge_src=np.concatenate(
            [ops.edge_src + offset for ops, offset in zip(member_ops, offsets)]),
        edge_dst=np.concatenate(
            [ops.edge_dst + offset for ops, offset in zip(member_ops, offsets)]),
        num_nodes=batch.num_nodes,
        dtype=dtype,
        index_dtype=index_dtype,
    )


def graph_ops(graph: GraphLike, dtype=None, index_dtype=None) -> GraphOps:
    """Build (or fetch the cached) :class:`GraphOps` for ``graph``.

    ``dtype`` selects the element width of the sparse operators and
    ``index_dtype`` the width of their structure/edge arrays (defaults:
    the ambient precision and index policies); each combination is
    memoised separately under the ``(op, elem_dtype, index_dtype)`` key.
    Works identically for a :class:`~repro.graph.graph.Graph` and a
    :class:`~repro.graph.batch.GraphBatch`; each instance memoises its
    own operators via :meth:`~repro.graph.graph.OpsCache.cached_ops`.
    """
    resolved = resolve_dtype(dtype)
    resolved_index = resolve_index_dtype(index_dtype)
    key = f"{GRAPH_OPS_KEY}.{resolved.name}.{resolved_index.name}"
    return graph.cached_ops(
        key, lambda g: _build_graph_ops(g, resolved, resolved_index))


def _compact_rows(matrix: sp.csr_matrix, lo: int, hi: int,
                  halo: np.ndarray, index_dtype: np.dtype) -> sp.csr_matrix:
    """Slice rows ``lo..hi`` of a CSR operator and compact its columns
    onto the shard's halo.

    ``halo`` is sorted and covers every column the sliced rows touch, and
    CSR column indices are sorted within each row, so the
    ``searchsorted`` remap keeps each row's column order exactly — an
    spmm over the compacted slice accumulates every output row in the
    same term order as the global operator (the bitwise-parity
    invariant).  Data/structure arrays are copied so the global operator
    can be freed after slicing.
    """
    indptr = matrix.indptr[lo:hi + 1].astype(np.int64)
    start, stop = int(indptr[0]), int(indptr[-1])
    data = np.array(matrix.data[start:stop])
    local = np.searchsorted(halo, matrix.indices[start:stop])
    # Assemble through attribute assignment (not the csr constructor) so
    # scipy cannot second-guess the requested index width.
    shell = sp.csr_matrix((hi - lo, int(halo.size)), dtype=matrix.dtype)
    shell.data = data
    shell.indices = local.astype(index_dtype)
    shell.indptr = (indptr - start).astype(index_dtype)
    return shell


class _ShardOperatorStore:
    """Lazy per-family backing store shared by one graph's shard ops.

    Each operator *family* (GCN's symmetric normalisation, SAGE's row
    normalisation, GAT's directed edge lists) is built for **all** shards
    in one pass on first access — the global operator is materialised
    once, sliced per shard with halo compaction, then freed — and
    families a workload never touches are never built (a GCN-only
    serving path pays for ``norm_adj`` slices only).
    """

    def __init__(self, graph: "ShardedGraph", dtype: np.dtype,
                 index_dtype: np.dtype):
        self._graph = graph
        self._dtype = dtype
        self._index_dtype = index_dtype
        self._families: dict = {}

    def family(self, name: str):
        got = self._families.get(name)
        if got is None:
            got = self._families[name] = self._build(name)
        return got

    def _build(self, name: str):
        graph = self._graph
        bounds = [graph.shard_range(i) for i in range(graph.num_shards)]
        if name == "edges":
            # Global edge order is concat(both orientations) + self-loops
            # (exactly `_build_graph_ops`); each shard keeps the
            # subsequence whose destination it owns, so per-destination
            # edge order — the order segment softmax and scatter-add
            # accumulate in — matches the dense path bitwise.
            src, dst = graph.directed_edges()
            loops = np.arange(graph.num_nodes, dtype=self._index_dtype)
            edge_src = np.concatenate([src, loops]).astype(self._index_dtype,
                                                           copy=False)
            edge_dst = np.concatenate([dst, loops]).astype(self._index_dtype,
                                                           copy=False)
            shards = []
            for lo, hi in bounds:
                mask = (edge_dst >= lo) & (edge_dst < hi)
                shards.append((edge_src[mask],
                               (edge_dst[mask] - lo).astype(self._index_dtype,
                                                            copy=False)))
            return shards
        if name == "norm_adj":
            full = normalized_adjacency(graph.adjacency, dtype=self._dtype,
                                        index_dtype=self._index_dtype)
        elif name == "row_norm_adj":
            full = row_normalized_adjacency(graph.adjacency, dtype=self._dtype,
                                            index_dtype=self._index_dtype)
        else:  # pragma: no cover - internal misuse
            raise KeyError(name)
        shards = [_compact_rows(full, lo, hi, graph.halo(i), self._index_dtype)
                  for i, (lo, hi) in enumerate(bounds)]
        return shards


@dataclasses.dataclass
class GraphShardOps:
    """Message-passing operators of one row shard of a
    :class:`~repro.graph.shard.ShardedGraph`.

    The sparse/edge operators live in a lazily-built family store shared
    by all shards of one ``(dtype, index_dtype)`` combination; accessing
    e.g. ``norm_adj`` materialises that family for every shard at once
    (one global build + slice) and leaves the other families unbuilt.

    ``norm_adj`` / ``row_norm_adj`` are halo-compacted: shape
    ``(num_rows, len(halo))``, with column ``j`` standing for global node
    ``halo[j]`` — gather ``x[halo]`` and spmm.  ``edge_src`` holds
    *global* source ids of the directed-edge subsequence whose
    destination falls in ``[row_start, row_stop)``; ``edge_dst_local`` is
    those destinations shifted to shard-local row ids.
    """

    index: int
    row_start: int
    row_stop: int
    halo: np.ndarray
    num_rows: int
    dtype: np.dtype
    index_dtype: np.dtype
    _store: _ShardOperatorStore = dataclasses.field(repr=False)

    @property
    def norm_adj(self) -> sp.csr_matrix:
        return self._store.family("norm_adj")[self.index]

    @property
    def row_norm_adj(self) -> sp.csr_matrix:
        return self._store.family("row_norm_adj")[self.index]

    @property
    def edge_src(self) -> np.ndarray:
        return self._store.family("edges")[self.index][0]

    @property
    def edge_dst_local(self) -> np.ndarray:
        return self._store.family("edges")[self.index][1]


def graph_shard_ops(graph: "ShardedGraph", dtype=None,
                    index_dtype=None) -> list:
    """Build (or fetch the cached) per-shard operator list of ``graph``.

    One :class:`GraphShardOps` per row shard, memoised under
    ``"gnn.message_passing.<elem>.<index>.shard<i>"`` — the dense
    family key plus a shard segment, so every family-prefix
    ``invalidate_cached_ops`` that drops the dense operators drops the
    shard slices with them (see
    :class:`~repro.graph.graph.OpsCache`).
    """
    if not isinstance(graph, ShardedGraph):
        raise TypeError(
            f"graph_shard_ops needs a ShardedGraph, got {type(graph).__name__}")
    resolved = resolve_dtype(dtype)
    resolved_index = resolve_index_dtype(index_dtype)
    base = f"{GRAPH_OPS_KEY}.{resolved.name}.{resolved_index.name}"
    # All shards missing from the cache share one lazily-built family
    # store; cached shards keep the store they were built with.
    store_box: list = []

    def shard_builder(i):
        def builder(g):
            if not store_box:
                store_box.append(
                    _ShardOperatorStore(g, resolved, resolved_index))
            lo, hi = g.shard_range(i)
            return GraphShardOps(index=i, row_start=lo, row_stop=hi,
                                 halo=g.halo(i), num_rows=hi - lo,
                                 dtype=resolved, index_dtype=resolved_index,
                                 _store=store_box[0])
        return builder

    return [graph.cached_ops(f"{base}.shard{i}", shard_builder(i))
            for i in range(graph.num_shards)]


class GCNConv(Module):
    """Graph convolution of Kipf & Welling."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros_init(out_features)) if bias else None

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        out = spmm(ops.norm_adj, x.matmul(self.weight), ops.norm_adj_t)
        if self.bias is not None:
            out = out + self.bias
        return out

    def fused_forward(self, x: Tensor, ops: GraphOps,
                      act: Optional[str] = None) -> Tensor:
        """Inference-only forward with bias + activation fused into the
        spmm (one CSR pass instead of three output walks).

        Never taped — callers must hold ``no_grad()``; the encoder's
        dispatch guarantees it.  Bitwise-identical to ``forward``
        followed by the activation on the numpy/threaded backends.
        """
        h = x.matmul(self.weight)
        bias = None if self.bias is None else self.bias.data
        return Tensor(get_backend().spmm_bias_act(ops.norm_adj, h.data,
                                                  bias, act))


class GATConv(Module):
    """Graph attention convolution of Velickovic et al.

    Multi-head attention with head-averaged outputs (keeping the layer
    width equal to ``out_features`` regardless of head count, as the paper
    fixes 128 hidden units per layer).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 num_heads: int = 1, negative_slope: float = 0.2, bias: bool = True):
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.negative_slope = negative_slope
        self.weight = Parameter(
            init.glorot_uniform((num_heads, in_features, out_features), rng))
        self.attn_src = Parameter(init.glorot_uniform((num_heads, out_features), rng))
        self.attn_dst = Parameter(init.glorot_uniform((num_heads, out_features), rng))
        self.bias = Parameter(init.zeros_init(out_features)) if bias else None

    def _combine_heads(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Everything up to (excluding) the bias: attention per head,
        messages scattered to destinations, heads averaged."""
        head_outputs = []
        for head in range(self.num_heads):
            weight = self.weight[head]           # (in, out)
            h = x.matmul(weight)                 # (n, out)
            score_src = (h * self.attn_src[head]).sum(axis=1)   # (n,)
            score_dst = (h * self.attn_dst[head]).sum(axis=1)   # (n,)
            logits = F.leaky_relu(
                score_src.take_rows(ops.edge_src) + score_dst.take_rows(ops.edge_dst),
                self.negative_slope,
            )                                    # (E,)
            alpha = F.segment_softmax(logits, ops.edge_dst, ops.num_nodes)
            messages = h.take_rows(ops.edge_src) * alpha.reshape(-1, 1)
            head_outputs.append(F.scatter_add(messages, ops.edge_dst, ops.num_nodes))
        out = head_outputs[0]
        if self.num_heads > 1:
            for other in head_outputs[1:]:
                out = out + other
            out = out * (1.0 / self.num_heads)
        return out

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        out = self._combine_heads(x, ops)
        if self.bias is not None:
            out = out + self.bias
        return out

    def fused_forward(self, x: Tensor, ops: GraphOps,
                      act: Optional[str] = None) -> Tensor:
        """Inference-only forward with the bias + activation epilogue
        fused into one elementwise pass (the attention path itself has no
        spmm to fuse into).  Never taped; see ``GCNConv.fused_forward``.
        """
        out = self._combine_heads(x, ops)
        bias = None if self.bias is None else self.bias.data
        return Tensor(get_backend().bias_act(out.data, bias, act))


class SAGEConv(Module):
    """GraphSAGE with the mean aggregator: ``[h_v ‖ mean(h_N(v))] W``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight_self = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.weight_neigh = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros_init(out_features)) if bias else None

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        neighbor_mean = spmm(ops.row_norm_adj, x, ops.row_norm_adj_t)
        out = x.matmul(self.weight_self) + neighbor_mean.matmul(self.weight_neigh)
        if self.bias is not None:
            out = out + self.bias
        return out

    def fused_forward(self, x: Tensor, ops: GraphOps,
                      act: Optional[str] = None) -> Tensor:
        """Inference-only forward with the bias + activation epilogue
        fused into one elementwise pass after the two-matmul mix.
        Never taped; see ``GCNConv.fused_forward``."""
        neighbor_mean = spmm(ops.row_norm_adj, x, ops.row_norm_adj_t)
        out = (x.matmul(self.weight_self)
               + neighbor_mean.matmul(self.weight_neigh))
        bias = None if self.bias is None else self.bias.data
        return Tensor(get_backend().bias_act(out.data, bias, act))


CONV_TYPES = {"gcn": GCNConv, "gat": GATConv, "sage": SAGEConv}
