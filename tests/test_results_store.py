"""Tests for the persistent evaluation results store (repro.eval.store)."""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.eval import evaluate_method, evaluate_methods
from repro.eval.store import (AGGREGATE_TASK, STORE_SCHEMA_VERSION,
                              ResultsStore, RunRecord, run_provenance)
from repro.baselines.base import CommunitySearchMethod, threshold_prediction
from repro.tasks.task import TaskSet


class OracleMethod(CommunitySearchMethod):
    """Predicts every query's full ground-truth community (F1 = 1)."""

    name = "Oracle"

    def meta_fit(self, train_tasks, valid_tasks=None, rng=None):
        pass

    def predict_task(self, task):
        return [threshold_prediction(example.membership.astype(float),
                                     example.query, example.membership)
                for example in task.queries]


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "runs.jsonl")


def _record(method="CTC", scenario="sgsc", dataset="cora", task="test-0",
            f1=0.5, **kwargs):
    return RunRecord(method=method, scenario=scenario, dataset=dataset,
                     task=task, metrics={"f1": f1}, **kwargs)


class TestAppendRead:
    def test_round_trip(self, store):
        store.append(_record(f1=0.7, shots=1, seed=3,
                             meta_features={"density": 0.1},
                             tags={"profile": "smoke"}))
        [record] = store.records()
        assert record.method == "CTC"
        assert record.f1 == 0.7
        assert record.shots == 1 and record.seed == 3
        assert record.meta_features == {"density": 0.1}
        assert record.tags == {"profile": "smoke"}
        assert record.schema == STORE_SCHEMA_VERSION
        assert record.created_at > 0       # stamped by append

    def test_missing_file_is_empty(self, tmp_path):
        assert len(ResultsStore(tmp_path / "absent.jsonl")) == 0
        assert ResultsStore(tmp_path / "absent.jsonl").records() == []

    def test_filters(self, store):
        store.append(_record(method="A", scenario="sgsc", shots=1))
        store.append(_record(method="B", scenario="sgdc", shots=5))
        assert [r.method for r in store.records(method="a")] == ["A"]
        assert [r.method for r in store.records(scenario="SGDC")] == ["B"]
        assert [r.method for r in store.records(shots=5)] == ["B"]
        assert store.records(method="A", scenario="sgdc") == []

    def test_unknown_filter_field_raises(self, store):
        with pytest.raises(ValueError, match="unknown filter"):
            store.records(flavour="vanilla")

    def test_methods_in_first_appearance_order(self, store):
        for name in ("Z", "A", "Z", "M"):
            store.append(_record(method=name))
        assert store.methods() == ("Z", "A", "M")

    def test_provenance_helper_names_active_policies(self):
        provenance = run_provenance()
        assert provenance["backend"]
        assert provenance["dtype"] in ("float32", "float64")
        assert provenance["index_dtype"] in ("int32", "int64")
        assert provenance["bundle_version"] >= 1


class TestCrashRecovery:
    def test_torn_last_line_is_skipped_not_fatal(self, store):
        store.append(_record(method="A"))
        store.append(_record(method="B"))
        with open(store.path, "ab") as handle:
            handle.write(b'{"method": "C", "metrics": {"f1"')   # torn write
        assert [r.method for r in store.records()] == ["A", "B"]
        assert store.lines_skipped == 1

    def test_append_after_torn_line_starts_fresh_line(self, store):
        """A post-crash append must not glue onto the torn fragment."""
        store.append(_record(method="A"))
        with open(store.path, "ab") as handle:
            handle.write(b'{"method": "C", "metr')
        store.append(_record(method="D"))
        assert [r.method for r in store.records()] == ["A", "D"]
        assert store.lines_skipped == 1

    def test_interior_garbage_line_is_skipped(self, store):
        store.append(_record(method="A"))
        with open(store.path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'[1, 2, 3]\n')               # json, not a record
            handle.write(b'{"no_method_key": 1}\n')    # object, not a record
        store.append(_record(method="B"))
        assert [r.method for r in store.records()] == ["A", "B"]
        assert store.lines_skipped == 3

    def test_concurrent_thread_writers_never_interleave(self, store):
        def writer(worker):
            for i in range(25):
                store.append(_record(method=f"m{worker}", task=f"t{i}"))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = store.records()
        assert len(records) == 100
        assert store.lines_skipped == 0
        # Every line decodes to exactly one whole record.
        with open(store.path) as handle:
            assert sum(1 for line in handle if line.strip()) == 100

    def test_concurrent_process_writers_never_interleave(self, store):
        processes = [
            multiprocessing.Process(target=_process_writer,
                                    args=(store.path, worker))
            for worker in range(3)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        assert all(process.exitcode == 0 for process in processes)
        assert len(store.records()) == 60
        assert store.lines_skipped == 0


def _process_writer(path, worker):
    writer_store = ResultsStore(path)
    for i in range(20):
        writer_store.append(RunRecord(method=f"p{worker}", task=f"t{i}",
                                      metrics={"f1": 0.5}))


class TestSchemaVersioning:
    def test_forward_read_keeps_unknown_fields(self, store):
        line = json.dumps({
            "method": "Future", "scenario": "sgsc", "dataset": "cora",
            "task": "test-0", "metrics": {"f1": 0.9},
            "schema": STORE_SCHEMA_VERSION + 5,
            "novel_field": {"nested": True},
        })
        with open(store.path, "w") as handle:
            handle.write(line + "\n")
        [record] = store.records()
        assert record.schema == STORE_SCHEMA_VERSION + 5
        assert record.extra == {"novel_field": {"nested": True}}

    def test_forward_read_round_trips_unknown_fields(self, store, tmp_path):
        store.append(RunRecord(method="Future",
                               schema=STORE_SCHEMA_VERSION + 5,
                               extra={"novel_field": [1, 2]}))
        rewritten = ResultsStore(tmp_path / "copy.jsonl")
        rewritten.extend(store.records())
        [record] = rewritten.records()
        assert record.extra == {"novel_field": [1, 2]}
        assert record.schema == STORE_SCHEMA_VERSION + 5

    def test_every_line_carries_schema(self, store):
        store.append(_record())
        with open(store.path) as handle:
            payload = json.loads(handle.readline())
        assert payload["schema"] == STORE_SCHEMA_VERSION


class TestOverview:
    def test_groups_and_means(self, store):
        for f1 in (0.2, 0.4):
            store.append(_record(method="A", task=f"t{f1}", f1=f1,
                                 train_time=1.0, test_time=2.0))
        store.append(_record(method="B", task="t0", f1=0.9))
        rows = store.overview(by=("method",))
        assert [row["method"] for row in rows] == ["A", "B"]
        assert rows[0]["runs"] == 2
        assert rows[0]["f1"] == pytest.approx(0.3)
        assert rows[0]["train_time"] == pytest.approx(1.0)
        assert rows[0]["test_time"] == pytest.approx(2.0)

    def test_aggregates_excluded_by_default(self, store):
        store.append(_record(method="A", task="test-0", f1=0.2))
        store.append(_record(method="A", task=AGGREGATE_TASK, f1=0.2))
        [row] = store.overview(by=("method",))
        assert row["runs"] == 1
        [row] = store.overview(by=("method",), include_aggregates=True)
        assert row["runs"] == 2

    def test_unknown_group_field_raises(self, store):
        store.append(_record())
        with pytest.raises(ValueError, match="cannot group by"):
            store.overview(by=("method", "flavour"))

    def test_table_renders_without_pandas(self, store):
        store.append(_record(method="A", f1=0.5))
        table = store.overview_table(by=("method",))
        assert "A" in table and "Runs" in table and "f1" in table

    def test_empty_table_names_the_path(self, store):
        assert str(store.path) in store.overview_table()


class TestEvaluatorIntegration:
    def test_evaluate_method_logs_per_task_and_aggregate(self, store,
                                                         tiny_tasks, rng):
        train, test = tiny_tasks
        tasks = TaskSet(name="sgsc-fixture", train=train, valid=[], test=test)
        result = evaluate_method(OracleMethod(), tasks, rng, store=store,
                                 tags={"suite": "unit"})
        records = store.records()
        per_task = [r for r in records if not r.is_aggregate]
        aggregates = [r for r in records if r.is_aggregate]
        assert len(per_task) == len(test)
        assert len(aggregates) == 1
        assert result.scenario == "sgsc" and result.dataset == "fixture"
        for record in per_task:
            assert record.scenario == "sgsc"
            assert record.dataset == "fixture"
            assert record.f1 == pytest.approx(1.0)
            assert record.meta_features       # selector training data
            assert record.provenance["backend"]
            assert record.tags == {"suite": "unit"}
        assert aggregates[0].f1 == pytest.approx(result.metrics.f1)
        assert aggregates[0].num_queries == len(result.per_query)

    def test_train_time_amortised_over_tasks(self, store, tiny_tasks, rng):
        train, test = tiny_tasks
        tasks = TaskSet(name="sgsc-fixture", train=train, valid=[], test=test)
        result = evaluate_method(OracleMethod(), tasks, rng, store=store)
        per_task = [r for r in store.records() if not r.is_aggregate]
        assert sum(r.train_time for r in per_task) == pytest.approx(
            result.train_time)

    def test_as_record_matches_result(self, tiny_tasks, rng):
        train, test = tiny_tasks
        tasks = TaskSet(name="sgsc-fixture", train=train, valid=[], test=test)
        result = evaluate_method(OracleMethod(), tasks, rng, num_shots=1,
                                 seed=9)
        record = result.as_record(tags={"suite": "unit"})
        assert record.task == AGGREGATE_TASK and record.is_aggregate
        assert record.metrics["f1"] == pytest.approx(result.metrics.f1)
        assert record.shots == 1 and record.seed == 9
        assert record.tags == {"suite": "unit"}

    def test_evaluate_methods_forwards_store(self, store, tiny_tasks, rng):
        train, test = tiny_tasks
        tasks = TaskSet(name="sgsc-fixture", train=train, valid=[], test=test)
        results = evaluate_methods([OracleMethod()], tasks, rng, store=store)
        assert len(results) == 1
        assert len(store.records(method="Oracle")) == len(test) + 1

    def test_per_task_outcomes_on_result(self, tiny_tasks, rng):
        train, test = tiny_tasks
        tasks = TaskSet(name="sgsc-fixture", train=train, valid=[], test=test)
        result = evaluate_method(OracleMethod(), tasks, rng)
        assert [o.task for o in result.per_task] == [t.name for t in test]
        assert sum(o.num_queries for o in result.per_task) == \
            len(result.per_query)
