"""Evaluator: run a :class:`CommunitySearchMethod` over a task set.

Produces the four paper metrics (per-query averaged) plus the wall-clock
split the efficiency figures need: total meta-training time and total test
time (which for adaptive methods includes their per-task fine-tuning).

Results are no longer throw-away: pass ``store=`` (a
:class:`~repro.eval.store.ResultsStore`) and every test task is logged as
one :class:`~repro.eval.store.RunRecord` — metrics, timings, the task's
meta-features (:func:`repro.meta.task_meta_features`) and execution
provenance — the training data for :class:`repro.meta.MethodSelector`
and the substrate of the ``repro results`` overview.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.base import CommunitySearchMethod
from ..tasks.task import Task, TaskSet
from .metrics import Metrics, community_metrics, mean_metrics
from .store import AGGREGATE_TASK, ResultsStore, RunRecord, run_provenance

__all__ = ["EvaluationResult", "TaskOutcome", "evaluate_method",
           "evaluate_methods"]


@dataclasses.dataclass
class TaskOutcome:
    """Per-task slice of an evaluation: one test task, one method."""

    task: str
    metrics: Metrics
    num_queries: int
    test_time: float
    per_query: List[Metrics]


@dataclasses.dataclass
class EvaluationResult:
    """Outcome of one method on one task set."""

    method: str
    metrics: Metrics
    train_time: float          # meta-training wall-clock (0 when no stage)
    test_time: float           # total prediction wall-clock over test tasks
    per_query: List[Metrics]   # raw per-query metrics
    per_task: List[TaskOutcome] = dataclasses.field(default_factory=list)
    scenario: str = ""
    dataset: str = ""
    shots: Optional[int] = None
    seed: Optional[int] = None

    def row(self) -> Dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "method": self.method,
            "acc": self.metrics.accuracy,
            "pre": self.metrics.precision,
            "rec": self.metrics.recall,
            "f1": self.metrics.f1,
            "train_time": self.train_time,
            "test_time": self.test_time,
        }

    def as_record(self, tags: Optional[Dict[str, str]] = None) -> RunRecord:
        """This result as one aggregate :class:`RunRecord` (``task="*"``).

        The whole-task-set summary line; per-task lines (which carry
        meta-features and train the selector) are written by
        :func:`evaluate_method` when a store is passed.
        """
        return RunRecord(
            method=self.method,
            scenario=self.scenario,
            dataset=self.dataset,
            task=AGGREGATE_TASK,
            metrics=self.metrics.as_dict(),
            num_queries=len(self.per_query),
            shots=self.shots,
            seed=self.seed,
            train_time=self.train_time,
            test_time=self.test_time,
            provenance=run_provenance(),
            tags=dict(tags or {}),
        )


def evaluate_method(method: CommunitySearchMethod, tasks: TaskSet,
                    rng: Optional[np.random.Generator] = None,
                    num_shots: Optional[int] = None,
                    skip_meta_fit: bool = False,
                    store: Optional[ResultsStore] = None,
                    scenario: str = "", dataset: str = "",
                    seed: Optional[int] = None,
                    tags: Optional[Dict[str, str]] = None) -> EvaluationResult:
    """Meta-fit on ``tasks.train`` then score on ``tasks.test``.

    Parameters
    ----------
    method:
        The approach under evaluation.
    tasks:
        Scenario task set.
    rng:
        Generator forwarded to ``meta_fit``.
    num_shots:
        Optionally truncate every task's support set (1-shot vs 5-shot
        columns of Tables II/III).
    skip_meta_fit:
        Reuse a previously fitted method (the shot sweep fits once).
    store:
        Optional :class:`ResultsStore` sink.  When given, one per-task
        :class:`RunRecord` — metrics, timing, meta-features, provenance
        — is appended per test task, plus one aggregate (``task="*"``)
        summary line.
    scenario / dataset / seed / tags:
        Record labels; ``scenario`` also drives the meta-feature one-hot.
        When ``tasks.name`` follows the ``"<scenario>-<dataset>"``
        convention of :mod:`repro.tasks.scenarios`, both default from it.
    """
    if not scenario or not dataset:
        inferred_scenario, _, inferred_dataset = tasks.name.partition("-")
        scenario = scenario or inferred_scenario
        dataset = dataset or inferred_dataset

    train = tasks.train
    valid = tasks.valid
    test = tasks.test
    if num_shots is not None:
        train = [t.with_shots(min(num_shots, t.num_shots)) for t in train]
        valid = [t.with_shots(min(num_shots, t.num_shots)) for t in valid]
        test = [t.with_shots(min(num_shots, t.num_shots)) for t in test]

    train_time = 0.0
    if not skip_meta_fit:
        start = time.perf_counter()
        method.meta_fit(train, valid, rng)
        train_time = time.perf_counter() - start
        if not method.trains_meta:
            train_time = 0.0  # per-task methods have no meta stage

    per_query: List[Metrics] = []
    per_task: List[TaskOutcome] = []
    test_time = 0.0
    for task in test:
        start = time.perf_counter()
        predictions = method.predict_task(task)
        elapsed = time.perf_counter() - start
        test_time += elapsed
        task_metrics = [community_metrics(p.members, p.ground_truth, p.query)
                        for p in predictions]
        per_query.extend(task_metrics)
        per_task.append(TaskOutcome(
            task=task.name, metrics=mean_metrics(task_metrics),
            num_queries=len(task_metrics), test_time=elapsed,
            per_query=task_metrics))

    result = EvaluationResult(
        method=method.name,
        metrics=mean_metrics(per_query),
        train_time=train_time,
        test_time=test_time,
        per_query=per_query,
        per_task=per_task,
        scenario=scenario,
        dataset=dataset,
        shots=num_shots,
        seed=seed,
    )
    if store is not None:
        _log_result(store, result, test, tags)
    return result


def _log_result(store: ResultsStore, result: EvaluationResult,
                test_tasks: Sequence[Task],
                tags: Optional[Dict[str, str]]) -> None:
    """Append per-task records (with meta-features) plus the aggregate."""
    from ..meta import task_meta_features

    provenance = run_provenance()
    # The meta-training cost is shared by every test task; amortise it so
    # summing train_time over a method's records never multiple-counts.
    shared_train = (result.train_time / len(test_tasks)) if test_tasks else 0.0
    for task, outcome in zip(test_tasks, result.per_task):
        store.append(RunRecord(
            method=result.method,
            scenario=result.scenario,
            dataset=result.dataset,
            task=outcome.task,
            metrics=outcome.metrics.as_dict(),
            num_queries=outcome.num_queries,
            shots=result.shots,
            seed=result.seed,
            train_time=shared_train,
            test_time=outcome.test_time,
            meta_features=task_meta_features(task, result.scenario),
            provenance=provenance,
            tags=dict(tags or {}),
        ))
    store.append(result.as_record(tags))


def evaluate_methods(methods: Sequence[CommunitySearchMethod], tasks: TaskSet,
                     rng: Optional[np.random.Generator] = None,
                     num_shots: Optional[int] = None,
                     store: Optional[ResultsStore] = None,
                     scenario: str = "", dataset: str = "",
                     seed: Optional[int] = None,
                     tags: Optional[Dict[str, str]] = None
                     ) -> List[EvaluationResult]:
    """Evaluate several methods on the same task set.

    ``store=`` / ``tags=`` and the record labels forward to
    :func:`evaluate_method` per method.
    """
    results = []
    for method in methods:
        child = np.random.default_rng(rng.integers(0, 2 ** 31 - 1)) if rng else None
        results.append(evaluate_method(
            method, tasks, child, num_shots=num_shots, store=store,
            scenario=scenario, dataset=dataset, seed=seed, tags=tags))
    return results
