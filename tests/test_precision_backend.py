"""Tests for the precision policy + pluggable array backend.

Covers the `repro.nn.backend` surface itself, its threading through the
tensor/sparse/graph/model layers, dtype-keyed operator caches, bundle
dtype round-trips and the engine's serving-precision controls.

This module intentionally does NOT appear in conftest's float64-pinned
set: every assertion here either names its dtype explicitly or checks
policy-following behaviour, so the suite is meaningful under both
``REPRO_DTYPE`` matrix entries.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import CommunitySearchEngine, ModelBundle
from repro.api.bundle import BUNDLE_HEADER_KEY
from repro.core import CGNP, CGNPConfig, MetaTrainConfig, meta_train
from repro.gnn.conv import GRAPH_OPS_KEY, graph_ops
from repro.graph import Graph, attributed_community_graph
from repro.nn import Adam, Linear, Tensor
from repro.nn.backend import (
    ArrayBackend,
    NumpyBackend,
    Precision,
    default_dtype,
    get_backend,
    precision,
    resolve_dtype,
    set_backend,
    use_backend,
)
from repro.nn.serialize import save_state
from repro.nn.sparse import normalized_adjacency, row_normalized_adjacency, spmm
from repro.tasks import TaskSampler
from repro.utils import make_rng


def _sample_task(seed: int = 0, name: str = "t"):
    graph = attributed_community_graph(
        num_nodes=60, num_communities=3, avg_degree=6.0, mixing=0.15,
        num_attributes=12, rng=make_rng(seed), name=f"{name}-graph")
    sampler = TaskSampler(graph, subgraph_nodes=40, num_support=2,
                          num_query=3, num_positive=3, num_negative=6)
    return sampler.sample_task(make_rng(seed + 1))


class TestPrecisionPolicy:
    def test_precision_context_nests_and_restores(self):
        base = default_dtype()
        with precision("float32"):
            assert default_dtype() == np.dtype(np.float32)
            with precision("float64"):
                assert default_dtype() == np.dtype(np.float64)
            assert default_dtype() == np.dtype(np.float32)
        assert default_dtype() == base

    def test_resolve_dtype_prefers_explicit(self):
        with precision("float32"):
            assert resolve_dtype() == np.dtype(np.float32)
            assert resolve_dtype("float64") == np.dtype(np.float64)
            assert resolve_dtype(Precision("float64")) == np.dtype(np.float64)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported precision"):
            Precision("float16")
        with pytest.raises(ValueError, match="unsupported precision"):
            with precision("int64"):
                pass  # pragma: no cover

    def test_precision_equality(self):
        assert Precision("float32") == Precision(np.float32)
        assert Precision("float32") == "float32"
        assert Precision("float32") != Precision("float64")


class TestTensorDtype:
    def test_integers_promote_to_policy_dtype(self):
        with precision("float32"):
            assert Tensor([1, 2, 3]).dtype == np.float32
        with precision("float64"):
            assert Tensor([1, 2, 3]).dtype == np.float64

    def test_floating_arrays_keep_their_dtype(self):
        with precision("float32"):
            assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_explicit_dtype_wins(self):
        t = Tensor(np.zeros(3, dtype=np.float64), dtype="float32")
        assert t.dtype == np.float32

    def test_astype_is_differentiable(self):
        x = Tensor(np.ones(4, dtype=np.float64), requires_grad=True)
        y = (x.astype("float32") * 3.0).sum()
        y.backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, 3.0)

    def test_astype_same_dtype_is_identity(self):
        x = Tensor(np.ones(2, dtype=np.float32))
        assert x.astype("float32") is x

    def test_scalar_operands_adopt_operand_dtype(self):
        """Python-scalar arithmetic must not upcast a float32 tensor to
        the ambient (float64) policy — the float32-serving-in-a-float64-
        process case."""
        with precision("float64"):
            x = Tensor(np.ones(3, dtype=np.float32))
            for result in (x + 1e-16, 1.0 - x, x * 0.5, x / 3.0, 2.0 / x,
                           x - 1.0):
                assert result.dtype == np.float32


class TestLayersAndOptimDtype:
    def test_linear_parameters_follow_policy(self):
        with precision("float32"):
            layer = Linear(4, 3, make_rng(0))
        assert layer.weight.dtype == np.float32
        assert layer.bias.dtype == np.float32

    def test_adam_step_preserves_float32(self):
        with precision("float32"):
            layer = Linear(4, 1, make_rng(0))
            optimizer = Adam(layer.parameters(), lr=1e-2)
            out = layer(Tensor(np.ones((2, 4), dtype=np.float32))).sum()
            out.backward()
            optimizer.step()
        assert all(p.dtype == np.float32 for p in layer.parameters())
        assert all(p.grad.dtype == np.float32 for p in layer.parameters())

    def test_same_seed_init_matches_across_dtypes(self):
        """The init draw happens at full width, so float32 weights are the
        cast of the float64 weights — not a different random stream."""
        with precision("float64"):
            w64 = Linear(6, 5, make_rng(7)).weight.data
        with precision("float32"):
            w32 = Linear(6, 5, make_rng(7)).weight.data
        np.testing.assert_allclose(w32, w64.astype(np.float32))


class TestSparseOperators:
    def _line_graph_adj(self, dtype=np.float64):
        return sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]],
                                      dtype=dtype))

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_normalized_adjacency_dtype(self, dtype):
        norm = normalized_adjacency(self._line_graph_adj(), dtype=dtype)
        assert norm.dtype == np.dtype(dtype)
        assert row_normalized_adjacency(self._line_graph_adj(),
                                        dtype=dtype).dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_isolated_node_rows_stay_zero(self, dtype):
        """Regression: isolated nodes yield zero rows (never NaN) at both
        element widths, with and without the self-loop path."""
        adj = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]],
                                     dtype=np.float64))
        no_loops = normalized_adjacency(adj, add_self_loops=False, dtype=dtype)
        np.testing.assert_array_equal(no_loops.toarray()[2], 0.0)
        row_norm = row_normalized_adjacency(adj, dtype=dtype)
        np.testing.assert_array_equal(row_norm.toarray()[2], 0.0)
        assert np.all(np.isfinite(no_loops.toarray()))
        assert np.all(np.isfinite(row_norm.toarray()))

    def test_self_loop_add_skipped_when_diagonal_present(self):
        """`A + I` is skipped (no copy, same nnz) when every diagonal entry
        already exists."""
        base = self._line_graph_adj() + sp.eye(3, format="csr")
        norm = normalized_adjacency(base, add_self_loops=True, dtype="float64")
        reference = normalized_adjacency(self._line_graph_adj(),
                                         add_self_loops=True, dtype="float64")
        np.testing.assert_allclose(norm.toarray(), reference.toarray())
        assert norm.nnz == reference.nnz

    def test_spmm_requires_csr(self):
        matrix = self._line_graph_adj().tocsc()
        with pytest.raises(TypeError, match="CSR"):
            spmm(matrix, Tensor(np.ones((3, 2))))

    def test_spmm_uses_cached_transpose_for_backward(self):
        rng = make_rng(5)
        matrix = sp.csr_matrix((rng.random((4, 4)) < 0.5).astype(np.float64))
        matrix_t = matrix.T.tocsr()
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = spmm(matrix, x, matrix_t)
        upstream = rng.normal(size=(4, 3))
        out.backward(upstream)
        np.testing.assert_allclose(x.grad, matrix.toarray().T @ upstream)


class TestDtypeKeyedOpsCache:
    def _graph(self, seed=11):
        rng = make_rng(seed)
        edges = [(i, (i + 1) % 8) for i in range(8)] + [(0, 4), (2, 6)]
        return Graph(num_nodes=8, edges=np.asarray(edges))

    def test_dtype_variants_cached_side_by_side(self):
        g = self._graph()
        ops32 = graph_ops(g, "float32")
        ops64 = graph_ops(g, "float64")
        assert ops32 is not ops64
        assert ops32.norm_adj.dtype == np.float32
        assert ops64.norm_adj.dtype == np.float64
        # Each variant is memoised independently.
        assert graph_ops(g, "float32") is ops32
        assert graph_ops(g, "float64") is ops64

    def test_family_invalidation_drops_all_dtype_variants(self):
        g = self._graph()
        ops32 = graph_ops(g, "float32")
        ops64 = graph_ops(g, "float64")
        g.invalidate_cached_ops(GRAPH_OPS_KEY)
        assert graph_ops(g, "float32") is not ops32
        assert graph_ops(g, "float64") is not ops64

    def test_default_dtype_follows_policy(self):
        g = self._graph()
        with precision("float32"):
            assert graph_ops(g).norm_adj.dtype == np.float32
        with precision("float64"):
            assert graph_ops(g).norm_adj.dtype == np.float64

    def test_transposed_operators(self):
        g = self._graph()
        ops = graph_ops(g, "float64")
        # The symmetric normalisation aliases its own transpose.
        assert ops.norm_adj_t is ops.norm_adj
        np.testing.assert_allclose(ops.row_norm_adj_t.toarray(),
                                   ops.row_norm_adj.toarray().T)
        assert ops.row_norm_adj_t.format == "csr"


class TestFloat32EndToEnd:
    def test_float32_training_stays_float32(self):
        with precision("float32"):
            task = _sample_task(seed=21)
            model = CGNP(task.features().shape[1],
                         CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                    decoder="ip"), make_rng(0))
            assert model.dtype == np.float32
            state = meta_train(model, [task], MetaTrainConfig(epochs=2),
                               make_rng(1))
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert np.isfinite(state.epoch_losses[-1])

    def test_float32_predictions_close_to_float64(self):
        task = _sample_task(seed=22)
        config = CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                            decoder="ip")
        with precision("float64"):
            model64 = CGNP(task.features().shape[1], config, make_rng(4))
        with precision("float32"):
            model32 = CGNP(task.features().shape[1], config, make_rng(4))
        query = task.queries[0].query
        p64 = model64.predict_proba(task, query)
        p32 = model32.predict_proba(task, query)
        assert p32.dtype == np.float32
        np.testing.assert_allclose(p32, p64, atol=1e-3)

    def test_float32_gat_model_stays_float32_under_float64_ambient(self):
        """A float32-built GAT model (the CGNP default conv) must compute
        float32 contexts and logits even when the ambient policy is
        float64 — the exact contract of from_bundle(dtype="float32")."""
        with precision("float64"):
            task = _sample_task(seed=24)
            with precision("float32"):
                model = CGNP(task.features().shape[1],
                             CGNPConfig(hidden_dim=8, num_layers=2,
                                        conv="gat", decoder="ip"),
                             make_rng(0))
            model.eval()
            context = model.context(task)
            assert context.dtype == np.float32
            probabilities = model.predict_proba(task, task.queries[0].query)
            assert probabilities.dtype == np.float32

    def test_edgeless_graph_follows_policy(self):
        with precision("float32"):
            graph = Graph(num_nodes=4, edges=np.zeros((0, 2), dtype=np.int64))
        assert graph.adjacency.dtype == np.float32

    def test_to_dtype_casts_model_in_place(self):
        task = _sample_task(seed=23)
        model = CGNP(task.features().shape[1],
                     CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                decoder="ip"), make_rng(0))
        model.to_dtype("float32")
        assert model.dtype == np.float32
        assert all(p.dtype == np.float32 for p in model.parameters())
        assert model.predict_proba(task, task.queries[0].query).dtype == np.float32


class TestBundleDtypeRoundTrip:
    def _model(self, task, dtype):
        with precision(dtype):
            return CGNP(task.features().shape[1],
                        CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                   decoder="ip"), make_rng(2))

    def test_float32_bundle_round_trip(self, tmp_path):
        task = _sample_task(seed=31)
        model = self._model(task, "float32")
        path = str(tmp_path / "f32.npz")
        ModelBundle.from_model(model).save(path)
        restored = ModelBundle.load(path)
        assert restored.dtype == "float32"
        rebuilt = restored.build_model()
        assert rebuilt.dtype == np.float32
        assert all(p.dtype == np.float32 for p in rebuilt.parameters())
        query = task.queries[0].query
        np.testing.assert_allclose(rebuilt.predict_proba(task, query),
                                   model.predict_proba(task, query))

    def test_header_without_dtype_defaults_to_float64(self, tmp_path):
        """Bundles written before the precision refactor load as float64."""
        import json
        task = _sample_task(seed=32)
        model = self._model(task, "float64")
        bundle = ModelBundle.from_model(model)
        header = bundle.header()
        del header["dtype"]  # simulate a pre-refactor header
        payload = dict(bundle.state)
        payload[BUNDLE_HEADER_KEY] = np.asarray(json.dumps(header))
        path = str(tmp_path / "legacy-header.npz")
        save_state(payload, path)
        restored = ModelBundle.load(path)
        assert restored.dtype == "float64"
        assert restored.build_model().dtype == np.float64

    def test_invalid_header_dtype_rejected_at_load(self, tmp_path):
        """A corrupt dtype field fails at load time (which CLIs handle),
        not deep inside model construction."""
        import json
        task = _sample_task(seed=35)
        model = self._model(task, "float64")
        bundle = ModelBundle.from_model(model)
        header = bundle.header()
        header["dtype"] = "float16"
        payload = dict(bundle.state)
        payload[BUNDLE_HEADER_KEY] = np.asarray(json.dumps(header))
        path = str(tmp_path / "bad-dtype.npz")
        save_state(payload, path)
        with pytest.raises(ValueError, match="invalid dtype"):
            ModelBundle.load(path)

    def test_weight_only_archive_defaults_to_float64(self, tmp_path):
        task = _sample_task(seed=33)
        model = self._model(task, "float64")
        path = str(tmp_path / "weights.npz")
        save_state(model.state_dict(), path)
        restored = ModelBundle.load(path)
        assert restored.is_legacy and restored.dtype == "float64"

    def test_build_model_dtype_override(self, tmp_path):
        task = _sample_task(seed=34)
        model = self._model(task, "float64")
        path = str(tmp_path / "f64.npz")
        ModelBundle.from_model(model).save(path)
        served = ModelBundle.load(path).build_model(dtype="float32")
        assert served.dtype == np.float32
        query = task.queries[0].query
        np.testing.assert_allclose(served.predict_proba(task, query),
                                   model.predict_proba(task, query), atol=1e-3)


class TestEngineServingDtype:
    def test_from_bundle_serves_at_float32(self, tmp_path):
        task = _sample_task(seed=41)
        with precision("float64"):
            model = CGNP(task.features().shape[1],
                         CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                    decoder="ip"), make_rng(2))
        path = str(tmp_path / "serve.npz")
        ModelBundle.from_model(model).save(path)
        engine = CommunitySearchEngine.from_bundle(path, dtype="float32")
        assert engine.dtype == np.float32
        engine.attach(task)
        members = engine.query(task.queries[0].query)
        assert task.queries[0].query in members.tolist()

    def test_attach_many_rejects_mixed_feature_dtypes(self):
        with precision("float32"):
            task32 = _sample_task(seed=42, name="f32")
        with precision("float64"):
            task64 = _sample_task(seed=43, name="f64")
            model = CGNP(task64.features().shape[1],
                         CGNPConfig(hidden_dim=8, num_layers=2, conv="gcn",
                                    decoder="ip"), make_rng(2))
        engine = CommunitySearchEngine(model)
        with pytest.raises(ValueError, match="mixed feature dtypes"):
            engine.attach_many([task32, task64])
        # Uniform-precision batches still bulk-attach fine.
        engine.attach_many([task64])


class TestArrayBackend:
    def test_default_backend_honors_env(self):
        # The process default comes from REPRO_BACKEND (numpy unless the
        # CI matrix overrides it); every registered backend is a
        # NumpyBackend refinement, so the kernel surface is always there.
        import os

        assert isinstance(get_backend(), NumpyBackend)
        assert get_backend().name == os.environ.get("REPRO_BACKEND", "numpy")

    def test_backend_creation_helpers_follow_policy(self):
        xp = get_backend()
        with precision("float32"):
            assert xp.zeros((2, 2)).dtype == np.float32
            assert xp.ones(3).dtype == np.float32
            assert xp.full((2,), 7.0).dtype == np.float32
            assert xp.asarray([1, 2]).dtype == np.float32

    def test_to_operator_avoids_needless_copies(self):
        xp = get_backend()
        csr = sp.csr_matrix(np.eye(3))
        already_canonical = xp.to_operator(csr, dtype="float64",
                                           index_dtype=csr.indices.dtype)
        assert already_canonical is csr
        converted = xp.to_operator(csr, dtype="float32")
        assert converted.dtype == np.float32
        # Recasting only the structure arrays shares the data array.
        other_width = (np.int64 if csr.indices.dtype == np.int32
                       else np.int32)
        recast = xp.to_operator(csr, dtype="float64",
                                index_dtype=other_width)
        assert recast.indices.dtype == other_width
        assert recast.data is csr.data

    def test_use_backend_routes_kernels(self):
        class CountingBackend(NumpyBackend):
            name = "counting"

            def __init__(self):
                self.matmuls = 0
                self.spmms = 0

            def matmul(self, a, b):
                self.matmuls += 1
                return super().matmul(a, b)

            def spmm(self, matrix, dense):
                self.spmms += 1
                return super().spmm(matrix, dense)

        counting = CountingBackend()
        matrix = sp.csr_matrix(np.eye(3))
        with use_backend(counting):
            Tensor(np.ones((3, 3))).matmul(Tensor(np.ones((3, 2))))
            spmm(matrix, Tensor(np.ones((3, 2))))
        assert counting.matmuls == 1
        assert counting.spmms == 1
        assert isinstance(get_backend(), NumpyBackend)

    def test_set_backend_type_checked(self):
        # Non-backend, non-name objects are rejected; unknown names too.
        with pytest.raises(TypeError):
            set_backend(42)
        with pytest.raises(ValueError):
            set_backend("no-such-backend")
        # Registered names resolve (scoped, so no process state leaks).
        from repro.nn.backend import use_backend

        with use_backend("numpy"):
            assert isinstance(get_backend(), NumpyBackend)
        # Factory options are only meaningful together with a name.
        with pytest.raises(TypeError):
            set_backend(NumpyBackend(), num_threads=2)

    def test_backend_rng_seeded(self):
        xp = get_backend()
        a = xp.rng(9).normal(size=4)
        b = xp.rng(9).normal(size=4)
        np.testing.assert_array_equal(a, b)

    def test_process_defaults_visible_across_threads(self):
        """set_default_dtype/set_backend are process-wide: worker threads
        (e.g. a future threaded-spmm pool) must see them, while scoped
        precision()/use_backend() overrides stay per-thread."""
        import threading

        from repro.nn.backend import set_default_dtype

        class NamedBackend(NumpyBackend):
            name = "named"

        seen = {}

        def worker():
            seen["dtype"] = default_dtype()
            seen["backend"] = get_backend().name

        original_dtype = default_dtype()
        try:
            set_default_dtype("float32")
            set_backend(NamedBackend())
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            set_default_dtype(original_dtype)
            set_backend(NumpyBackend())
        assert seen["dtype"] == np.dtype(np.float32)
        assert seen["backend"] == "named"

    def test_scoped_overrides_stay_per_thread(self):
        import threading

        process_default = default_dtype()
        opposite = ("float32" if process_default == np.dtype(np.float64)
                    else "float64")
        seen = {}

        def worker():
            seen["dtype"] = default_dtype()

        with precision(opposite):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker saw the process default, not this thread's override.
        assert seen["dtype"] == process_default
