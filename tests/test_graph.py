"""Tests for the Graph container: construction, accessors, communities and
induced subgraphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, from_edge_list, from_networkx, to_networkx

from helpers import triangle_graph, two_cliques_graph


class TestConstruction:
    def test_basic_counts(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_self_loops_removed(self):
        g = Graph(3, [(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_duplicate_and_reversed_edges_merged(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_edges_canonical_orientation(self):
        g = Graph(3, [(2, 0), (1, 2)])
        assert np.all(g.edges[:, 0] < g.edges[:, 1])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Graph(0, [])

    def test_no_edges_graph(self):
        g = Graph(5, [])
        assert g.num_edges == 0
        assert g.degrees().sum() == 0

    def test_attribute_shape_validated(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)], attributes=np.zeros((2, 4)))

    def test_community_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)], communities=[[0, 9]])


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        np.testing.assert_array_equal(g.neighbors(0), [1, 2, 3])

    def test_degrees(self):
        g = triangle_graph()
        np.testing.assert_array_equal(g.degrees(), [2, 2, 2])

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 1)

    def test_directed_edges_both_orientations(self):
        g = Graph(3, [(0, 1), (1, 2)])
        src, dst = g.directed_edges()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs
        assert len(pairs) == 4

    def test_adjacency_symmetric(self):
        g = two_cliques_graph()
        adj = g.adjacency.toarray()
        np.testing.assert_array_equal(adj, adj.T)


class TestCommunities:
    def test_membership_lookup(self):
        g = two_cliques_graph(4)
        assert g.communities_of(0) == [0]
        assert g.communities_of(5) == [1]

    def test_overlapping_communities(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], communities=[[0, 1, 2], [2, 3]])
        assert g.communities_of(2) == [0, 1]
        assert g.ground_truth_community(2) == {0, 1, 2, 3}

    def test_ground_truth_union(self):
        g = two_cliques_graph(3)
        assert g.ground_truth_community(1) == {0, 1, 2}

    def test_node_without_community(self):
        g = Graph(3, [(0, 1)], communities=[[0, 1]])
        assert g.communities_of(2) == []
        assert g.ground_truth_community(2) == set()

    def test_nodes_with_ground_truth(self):
        g = Graph(4, [(0, 1)], communities=[[1, 3]])
        np.testing.assert_array_equal(g.nodes_with_ground_truth(), [1, 3])

    def test_empty_community_skipped(self):
        g = Graph(3, [(0, 1)], communities=[[], [0]])
        assert g.num_communities == 1


class TestInducedSubgraph:
    def test_preserves_internal_edges(self):
        g = two_cliques_graph(4)  # nodes 0-3 and 4-7
        sub = g.induced_subgraph([0, 1, 2, 3])
        assert sub.num_nodes == 4
        assert sub.num_edges == 6  # K4

    def test_drops_external_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.induced_subgraph([0, 1, 3])
        assert sub.num_edges == 1  # only (0, 1) survives

    def test_parent_nodes_recorded(self):
        g = two_cliques_graph(3)
        sub = g.induced_subgraph([4, 2, 0])
        np.testing.assert_array_equal(sub.parent_nodes, [4, 2, 0])

    def test_nested_induction_tracks_original_ids(self):
        g = two_cliques_graph(4)
        sub = g.induced_subgraph([4, 5, 6, 7])
        subsub = sub.induced_subgraph([1, 2])
        np.testing.assert_array_equal(subsub.parent_nodes, [5, 6])

    def test_communities_restricted_and_relabelled(self):
        g = two_cliques_graph(3)  # communities {0,1,2} and {3,4,5}
        sub = g.induced_subgraph([1, 2, 3])
        community_sets = {frozenset(c) for c in sub.communities}
        assert frozenset({0, 1}) in community_sets  # {1,2} relabelled
        assert frozenset({2}) in community_sets     # {3} relabelled

    def test_attributes_sliced(self):
        attrs = np.arange(12.0).reshape(4, 3)
        g = Graph(4, [(0, 1)], attributes=attrs)
        sub = g.induced_subgraph([2, 0])
        np.testing.assert_allclose(sub.attributes, attrs[[2, 0]])

    def test_duplicate_nodes_deduplicated(self):
        g = triangle_graph()
        sub = g.induced_subgraph([0, 0, 1])
        assert sub.num_nodes == 2

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            triangle_graph().induced_subgraph([])


class TestConversions:
    def test_from_edge_list(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_networkx_roundtrip(self):
        g = two_cliques_graph(4)
        back = from_networkx(to_networkx(g))
        assert back.num_nodes == g.num_nodes
        assert back.num_edges == g.num_edges
        # Community structure survives the roundtrip.
        assert back.num_communities == g.num_communities

    def test_to_networkx_attaches_communities(self):
        g = two_cliques_graph(3)
        nx_graph = to_networkx(g)
        assert nx_graph.nodes[0]["community"] == [0]
