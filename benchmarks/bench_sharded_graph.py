"""Benchmark — ShardedGraph: fixed-RAM-budget encode & serve.

The claim under test (ISSUE 8 / ROADMAP "shard the graph"): with
:class:`repro.graph.ShardedGraph`, the anonymous-memory footprint of
encoding and serving a graph is bounded by ``shard_rows × d``, not
``n × d`` — so a graph whose dense feature matrix alone exceeds a RAM
budget can still be deployed, at full bitwise parity with the dense
reference.

Three legs, measured honestly:

* **budget probes** — subprocesses with an *enforced* anonymous-memory
  cap (``resource.setrlimit(RLIMIT_DATA)``, which anonymous numpy
  allocations count against while file-backed ``np.memmap`` pages do
  not).  The dense path must die with ``MemoryError`` — its feature
  matrix alone (``n × d × 4`` bytes) is provably larger than the cap —
  while the sharded path attaches and serves under the same cap, once
  per shard width, recording peak RSS and serve throughput.
* **both-fit comparison** — a smaller graph where dense *does* fit, so
  sharded throughput can be compared against the dense baseline
  in-process (the acceptance bar: within 2x).
* **tiny (CI)** — seconds-scale: asserts bitwise parity of
  ``predict_proba`` between dense and 4-shard memmap serving, and a
  >= 2x ``graph_resident_bytes`` reduction.

Writes a ``BENCH_sharded.json`` perf record next to this file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_graph.py [--tiny]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_graph.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from conftest import peak_rss_bytes
from repro.api import CommunitySearchEngine
from repro.core import CGNP, CGNPConfig
from repro.graph import Graph, ShardedGraph, graph_memory_profile
from repro.nn.backend import precision
from repro.tasks import QueryExample, Task
from repro.utils import make_rng

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "BENCH_sharded.json")

# The budget story needs a graph whose dense feature matrix alone
# (n*d*4 bytes at float32) provably exceeds the cap while the sharded
# working set fits with room for CSR construction transients.  2M nodes
# x 512 attributes = 4.0 GiB of features against a 2.5 GiB cap.
FULL = dict(nodes=2_000_000, edges=10_000_000, window=1000, dim=512,
            hidden_dim=16, num_layers=2, conv="gcn", decoder="ip",
            shard_widths=(4, 8, 16), budget_mb=2500,
            predict_calls=20, nodes_per_call=4)
# Dense fits here (200k x 256 x 4 = 200 MiB), so throughput is
# comparable head-to-head.
BOTH_FIT = dict(nodes=200_000, edges=1_000_000, window=500, dim=256,
                hidden_dim=16, num_layers=2, conv="gcn", decoder="ip",
                shards=4, predict_calls=30, nodes_per_call=4)
# CI-sized: parity + resident-bytes reduction in seconds.  dim is kept
# large relative to the CSR structure so the >= 2x reduction bar
# measures the feature win, not noise.
TINY = dict(nodes=2_000, edges=6_000, window=40, dim=128,
            hidden_dim=16, num_layers=2, conv="gcn", decoder="ip",
            shards=4, predict_calls=8, nodes_per_call=4)


# ----------------------------------------------------------------------
# Deterministic synthetic substrate
# ----------------------------------------------------------------------
def locality_edges(nodes: int, edges: int, window: int,
                   seed: int = 7) -> np.ndarray:
    """Undirected edges with bounded locality: ``v ± U(1..window)``.

    Locality keeps every shard's halo small (at most ``window`` rows on
    each side of the cut), which is the regime sharding targets — the
    same reason mesh/road/sequence graphs shard well.
    """
    rng = np.random.default_rng(seed)
    src = rng.integers(0, nodes, size=edges, dtype=np.int64)
    step = rng.integers(1, window + 1, size=edges, dtype=np.int64)
    sign = rng.integers(0, 2, size=edges, dtype=np.int64) * 2 - 1
    dst = np.clip(src + sign * step, 0, nodes - 1)
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


def feature_block(lo: int, hi: int, dim: int) -> np.ndarray:
    """Rows ``lo:hi`` of the deterministic feature matrix (float32).

    Cheap (no transcendentals) and position-dependent, so any row
    misalignment between the dense and sharded paths breaks parity
    loudly instead of averaging out.
    """
    rows = np.arange(lo, hi, dtype=np.float64).reshape(-1, 1)
    cols = np.arange(dim, dtype=np.float64).reshape(1, -1)
    return (((rows * 0.000515 + cols * 0.137 + 0.25) % 1.0) - 0.5).astype(
        np.float32)


def build_task(graph: Graph, params: Dict, seed: int = 13) -> Task:
    """A 1-shot task over ``graph`` (attributes only, no structural
    features — the streaming support-fill path).

    1-shot keeps the default fused serving path bitwise against the
    unfused reference, so parity checks need no environment juggling.
    """
    rng = make_rng(seed)
    nodes = graph.num_nodes

    def example(query: int) -> QueryExample:
        query = int(np.clip(query, 1, nodes - 2))
        positives = np.unique(np.clip(
            query + rng.integers(1, max(2, params["window"] // 2), size=4),
            0, nodes - 1))
        positives = positives[positives != query]
        negatives = np.unique(rng.integers(0, nodes, size=6))
        negatives = np.setdiff1d(negatives, np.append(positives, query))
        membership = np.zeros(nodes, dtype=bool)
        membership[query] = True
        membership[positives] = True
        return QueryExample(query=query, positives=positives,
                            negatives=negatives, membership=membership)

    support = [example(int(rng.integers(0, nodes)))]
    queries = [example(int(rng.integers(0, nodes))) for _ in range(2)]
    return Task(graph, support, queries, name="bench_sharded",
                use_attributes=True, use_structural=False)


def build_model(params: Dict, seed: int = 5) -> CGNP:
    return CGNP(params["dim"], CGNPConfig(
        hidden_dim=params["hidden_dim"], num_layers=params["num_layers"],
        conv=params["conv"], aggregator="sum", decoder=params["decoder"],
        num_heads=1, use_attributes=True, use_structural=False),
        make_rng(seed))


def serve_leg(engine: CommunitySearchEngine, task: Task,
              params: Dict) -> Dict:
    """Attach (context encode) then steady-state ``predict_proba``."""
    rng = make_rng(23)
    start = time.perf_counter()
    engine.attach(task)
    engine.predict_proba(rng.integers(0, task.graph.num_nodes,
                                      size=params["nodes_per_call"]))
    first_answer = time.perf_counter() - start

    batches = [rng.integers(0, task.graph.num_nodes,
                            size=params["nodes_per_call"])
               for _ in range(params["predict_calls"])]
    start = time.perf_counter()
    for batch in batches:
        engine.predict_proba(batch)
    elapsed = time.perf_counter() - start
    stats = engine.stats()
    return {
        "time_to_first_answer_seconds": first_answer,
        "queries_per_second":
            params["predict_calls"] * params["nodes_per_call"] / elapsed,
        "graph_resident_bytes": stats.graph_resident_bytes,
        "shard_count": stats.shard_count,
    }


# ----------------------------------------------------------------------
# Budget probes (subprocess, enforced anonymous-memory cap)
# ----------------------------------------------------------------------
def _vmdata_bytes() -> Optional[int]:
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmData:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - no procfs
        pass
    return None


def _enforce_budget(budget_bytes: int) -> bool:
    """Cap this process's anonymous memory at baseline + budget.

    ``RLIMIT_DATA`` covers private anonymous mappings (Linux >= 4.7),
    which is exactly the axis sharding bounds; ``np.memmap`` pages are
    file-backed and exempt.  Returns False where unenforceable (no
    procfs / no resource module) so records say so instead of lying.
    """
    baseline = _vmdata_bytes()
    if baseline is None:
        return False
    try:
        import resource
        cap = baseline + budget_bytes
        resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
        return True
    except (ImportError, ValueError, OSError):  # pragma: no cover
        return False


def _mount_is_tmpfs(path: str) -> bool:
    """True when ``path`` lives on tmpfs (RAM-backed — memmapping there
    would silently turn the bounded-RAM story into an unbounded one)."""
    best, fstype = "", ""
    try:
        with open("/proc/mounts") as handle:
            for line in handle:
                parts = line.split()
                if len(parts) >= 3 and path.startswith(parts[1]) \
                        and len(parts[1]) > len(best):
                    best, fstype = parts[1], parts[2]
    except OSError:  # pragma: no cover - no procfs
        return False
    return fstype in ("tmpfs", "ramfs")


def memmap_workdir() -> str:
    """A scratch directory on real disk (never tmpfs) for memmap files."""
    for candidate in (os.path.dirname(os.path.abspath(__file__)),
                      tempfile.gettempdir()):
        if not _mount_is_tmpfs(candidate):
            return tempfile.mkdtemp(prefix="bench_shard_",
                                    dir=candidate)
    raise RuntimeError("no non-tmpfs directory available for memmap files")


def run_probe(mode: str, params: Dict, budget_mb: int,
              memmap_dir: Optional[str], result_path: str) -> None:
    """Child-process body: build + encode + serve under the enforced cap.

    ``mode`` is ``dense`` or ``sharded:<width>``.  Always writes a JSON
    result, ``ok=False`` with the error when the budget is exceeded.
    """
    budget = budget_mb * 1024 * 1024
    result: Dict = {"mode": mode, "budget_bytes": budget,
                    "dense_feature_bytes": params["nodes"] * params["dim"] * 4,
                    "ok": False}
    result["budget_enforced"] = _enforce_budget(budget)
    try:
        with precision("float32"):
            edges = locality_edges(params["nodes"], params["edges"],
                                   params["window"])
            start = time.perf_counter()
            if mode == "dense":
                attributes = np.empty((params["nodes"], params["dim"]),
                                      dtype=np.float32)
                for lo in range(0, params["nodes"], 65536):
                    hi = min(lo + 65536, params["nodes"])
                    attributes[lo:hi] = feature_block(lo, hi, params["dim"])
                graph: Graph = Graph(params["nodes"], edges,
                                     attributes=attributes)
            else:
                width = int(mode.split(":", 1)[1])
                graph = ShardedGraph(
                    params["nodes"], edges,
                    attributes=lambda lo, hi: feature_block(
                        lo, hi, params["dim"]),
                    num_shards=width, memmap_dir=memmap_dir,
                    attribute_dim=params["dim"])
            build_seconds = time.perf_counter() - start
            del edges

            task = build_task(graph, params)
            engine = CommunitySearchEngine(build_model(params))
            result.update(serve_leg(engine, task, params))
            result.update(ok=True, build_seconds=build_seconds)
    except MemoryError:
        result["error"] = "MemoryError: exceeded the anonymous-memory budget"
    result["peak_rss_bytes"] = peak_rss_bytes()
    with open(result_path, "w") as handle:
        json.dump(result, handle)


def launch_probe(mode: str, budget_mb: int, workdir: str) -> Dict:
    """Run one probe subprocess; tolerate hard deaths of the dense leg
    (a C-level allocator may abort instead of raising MemoryError)."""
    result_path = os.path.join(workdir, f"probe_{mode.replace(':', '_')}.json")
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--probe", mode,
         "--budget-mb", str(budget_mb), "--memmap-dir", workdir,
         "--result", result_path],
        env=env, cwd=os.path.dirname(os.path.abspath(__file__)))
    if os.path.exists(result_path):
        with open(result_path) as handle:
            return json.load(handle)
    return {"mode": mode, "ok": False,
            "error": f"probe process died (returncode {proc.returncode})"}


# ----------------------------------------------------------------------
# Legs
# ----------------------------------------------------------------------
def run_budget_leg(params: Dict) -> Dict:
    workdir = memmap_workdir()
    try:
        print(f"[budget] n={params['nodes']:,} m~{params['edges']:,} "
              f"d={params['dim']} cap={params['budget_mb']} MiB "
              f"(dense features alone: "
              f"{params['nodes'] * params['dim'] * 4 / 2**30:.1f} GiB)")
        dense = launch_probe("dense", params["budget_mb"], workdir)
        print(f"  dense: {'SUCCEEDED (cap not binding?)' if dense['ok'] else dense.get('error', 'failed')}")
        sharded = []
        for width in params["shard_widths"]:
            probe = launch_probe(f"sharded:{width}", params["budget_mb"],
                                 workdir)
            sharded.append(probe)
            if probe["ok"]:
                print(f"  sharded x{width}: ok, peak RSS "
                      f"{probe['peak_rss_bytes'] / 2**30:.2f} GiB, "
                      f"resident {probe['graph_resident_bytes'] / 2**20:.0f} "
                      f"MiB, {probe['queries_per_second']:.0f} q/s")
            else:
                print(f"  sharded x{width}: FAILED — "
                      f"{probe.get('error', '?')}")
        return {"params": {k: v for k, v in params.items()},
                "dense": dense, "sharded": sharded}
    finally:
        for name in os.listdir(workdir):
            os.unlink(os.path.join(workdir, name))
        os.rmdir(workdir)


def run_both_fit_leg(params: Dict) -> Dict:
    """Dense vs sharded throughput where both fit (no cap)."""
    workdir = memmap_workdir()
    try:
        with precision("float32"):
            edges = locality_edges(params["nodes"], params["edges"],
                                   params["window"])
            attributes = feature_block(0, params["nodes"], params["dim"])
            dense_graph = Graph(params["nodes"], edges,
                                attributes=attributes)
            dense = serve_leg(CommunitySearchEngine(build_model(params)),
                              build_task(dense_graph, params), params)
            with ShardedGraph(params["nodes"], edges,
                              attributes=lambda lo, hi: feature_block(
                                  lo, hi, params["dim"]),
                              num_shards=params["shards"],
                              memmap_dir=workdir,
                              attribute_dim=params["dim"]) as shard_graph:
                sharded = serve_leg(
                    CommunitySearchEngine(build_model(params)),
                    build_task(shard_graph, params), params)
        ratio = sharded["queries_per_second"] / dense["queries_per_second"]
        print(f"[both-fit] n={params['nodes']:,}: dense "
              f"{dense['queries_per_second']:.0f} q/s vs sharded x"
              f"{params['shards']} {sharded['queries_per_second']:.0f} q/s "
              f"({ratio:.2f}x)")
        return {"params": dict(params), "dense": dense, "sharded": sharded,
                "sharded_over_dense_throughput": ratio}
    finally:
        for name in os.listdir(workdir):
            os.unlink(os.path.join(workdir, name))
        os.rmdir(workdir)


def run_tiny_leg(params: Dict) -> Dict:
    """CI leg: bitwise parity + >= 2x resident-bytes reduction."""
    workdir = memmap_workdir()
    try:
        with precision("float32"):
            edges = locality_edges(params["nodes"], params["edges"],
                                   params["window"])
            attributes = feature_block(0, params["nodes"], params["dim"])
            dense_graph = Graph(params["nodes"], edges,
                                attributes=attributes)
            model = build_model(params)
            dense_engine = CommunitySearchEngine(model)
            dense_task = build_task(dense_graph, params)
            dense_engine.attach(dense_task)

            rng = make_rng(43)
            batches = [rng.integers(0, params["nodes"],
                                    size=params["nodes_per_call"])
                       for _ in range(params["predict_calls"])]
            dense_probs = [dense_engine.predict_proba(b) for b in batches]
            dense_resident, _ = graph_memory_profile(dense_graph)

            with ShardedGraph(params["nodes"], edges,
                              attributes=lambda lo, hi: feature_block(
                                  lo, hi, params["dim"]),
                              num_shards=params["shards"],
                              memmap_dir=workdir,
                              attribute_dim=params["dim"]) as shard_graph:
                shard_engine = CommunitySearchEngine(model)
                shard_engine.attach(build_task(shard_graph, params))
                shard_probs = [shard_engine.predict_proba(b)
                               for b in batches]
                shard_resident, shard_count = graph_memory_profile(
                    shard_graph)

        parity = all(np.array_equal(a, b)
                     for a, b in zip(dense_probs, shard_probs))
        reduction = dense_resident / max(shard_resident, 1)
        print(f"[tiny] parity={'bitwise' if parity else 'MISMATCH'} "
              f"resident {dense_resident / 1024:.0f} KiB -> "
              f"{shard_resident / 1024:.0f} KiB "
              f"({reduction:.1f}x at {shard_count} shards)")
        return {"params": dict(params), "outputs_bitwise_equal": parity,
                "dense_resident_bytes": int(dense_resident),
                "sharded_resident_bytes": int(shard_resident),
                "resident_reduction": reduction,
                "shard_count": shard_count}
    finally:
        for name in os.listdir(workdir):
            os.unlink(os.path.join(workdir, name))
        os.rmdir(workdir)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_benchmark(out_path: str, tiny: bool = False) -> Dict:
    record: Dict = {"benchmark": "sharded_graph_budget_encode_serve"}
    record["tiny"] = run_tiny_leg(dict(TINY))
    if not tiny:
        record["both_fit"] = run_both_fit_leg(dict(BOTH_FIT))
        record["budget"] = run_budget_leg(dict(FULL))
    record["peak_rss_bytes"] = peak_rss_bytes()
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"  wrote {out_path}")
    return record


def check_tiny(record: Dict) -> None:
    tiny = record["tiny"]
    assert tiny["outputs_bitwise_equal"], \
        "sharded predict_proba diverged from the dense reference"
    assert tiny["resident_reduction"] >= 2.0, \
        (f"resident bytes shrank only {tiny['resident_reduction']:.2f}x "
         f"at {tiny['shard_count']} shards (need >= 2x)")


def test_sharded_budget_tiny(tmp_path):
    """Pytest entry: the CI contract — bitwise parity with the dense
    reference and a >= 2x resident-bytes reduction at 4 shards."""
    record = run_benchmark(str(tmp_path / "BENCH_sharded.json"), tiny=True)
    check_tiny(record)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI-sized: parity + resident-reduction only")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="perf-record JSON path")
    parser.add_argument("--probe", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--budget-mb", type=int, default=FULL["budget_mb"],
                        help=argparse.SUPPRESS)
    parser.add_argument("--memmap-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--result", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.probe:
        run_probe(args.probe, dict(FULL), args.budget_mb,
                  args.memmap_dir, args.result)
        return 0
    record = run_benchmark(args.out, tiny=args.tiny)
    check_tiny(record)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
